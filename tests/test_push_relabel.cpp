#include <gtest/gtest.h>

#include "flow/dinic.hpp"
#include "flow/push_relabel.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using ht::flow::Dinic;
using ht::flow::PushRelabel;

TEST(PushRelabel, TextbookNetwork) {
  PushRelabel<double> pr(4);
  pr.add_arc(0, 1, 3.0);
  pr.add_arc(0, 2, 2.0);
  pr.add_arc(1, 2, 5.0);
  pr.add_arc(1, 3, 2.0);
  pr.add_arc(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(pr.max_flow(0, 3), 5.0);
}

TEST(PushRelabel, DisconnectedSink) {
  PushRelabel<double> pr(3);
  pr.add_arc(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(pr.max_flow(0, 2), 0.0);
  const auto side = pr.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[2]);
}

TEST(PushRelabel, IntegerCapacities) {
  PushRelabel<std::int64_t> pr(4);
  pr.add_arc(0, 1, 10);
  pr.add_arc(1, 3, 7);
  pr.add_arc(0, 2, 5);
  pr.add_arc(2, 3, 5);
  EXPECT_EQ(pr.max_flow(0, 3), 12);
}

TEST(PushRelabel, UndirectedEdges) {
  PushRelabel<double> pr(3);
  pr.add_undirected(0, 1, 2.0);
  pr.add_undirected(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(pr.max_flow(0, 2), 2.0);
}

struct CrossCheckParam {
  int n;
  double p;
  std::uint64_t seed;
};

class FlowCrossCheck : public ::testing::TestWithParam<CrossCheckParam> {};

TEST_P(FlowCrossCheck, PushRelabelAgreesWithDinic) {
  const auto param = GetParam();
  ht::Rng rng(param.seed);
  const auto g = ht::graph::gnp(param.n, param.p, rng);
  for (int trial = 0; trial < 6; ++trial) {
    auto pick = rng.sample_without_replacement(param.n, 2);
    Dinic<double> dinic(param.n);
    PushRelabel<double> pr(param.n);
    for (const auto& e : g.edges()) {
      const double w = 1.0 + static_cast<double>(rng.next_below(5));
      dinic.add_undirected(e.u, e.v, w);
      pr.add_undirected(e.u, e.v, w);
    }
    const double df = dinic.max_flow(pick[0], pick[1]);
    const double pf = pr.max_flow(pick[0], pick[1]);
    EXPECT_NEAR(df, pf, 1e-8) << "terminals " << pick[0] << "," << pick[1];
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, FlowCrossCheck,
    ::testing::Values(CrossCheckParam{8, 0.5, 1}, CrossCheckParam{12, 0.4, 2},
                      CrossCheckParam{16, 0.3, 3},
                      CrossCheckParam{24, 0.25, 4},
                      CrossCheckParam{32, 0.2, 5},
                      CrossCheckParam{48, 0.15, 6}));

TEST(PushRelabel, MinCutSideConsistentWithValue) {
  ht::Rng rng(9);
  const auto g = ht::graph::gnp_connected(20, 0.3, rng);
  PushRelabel<double> pr(20);
  std::vector<double> weights;
  for (const auto& e : g.edges()) {
    const double w = 1.0 + static_cast<double>(rng.next_below(4));
    weights.push_back(w);
    pr.add_undirected(e.u, e.v, w);
  }
  const double flow = pr.max_flow(0, 19);
  const auto side = pr.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[19]);
  double cut = 0.0;
  for (std::size_t i = 0; i < g.edges().size(); ++i) {
    const auto& e = g.edges()[i];
    if (side[static_cast<std::size_t>(e.u)] !=
        side[static_cast<std::size_t>(e.v)])
      cut += weights[i];
  }
  EXPECT_NEAR(cut, flow, 1e-8);
}

}  // namespace
