#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace {

using ht::graph::Graph;
using ht::graph::VertexId;

TEST(Graph, BasicConstruction) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2);
  g.finalize();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 2.0);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, RejectsSelfLoopAndBadIds) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 5), std::logic_error);
  EXPECT_THROW(g.add_edge(-1, 1), std::logic_error);
}

TEST(Graph, NeighborsMatchEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.finalize();
  std::set<VertexId> ns;
  for (const auto& a : g.neighbors(0)) ns.insert(a.to);
  EXPECT_EQ(ns, (std::set<VertexId>{1, 2, 3}));
}

TEST(Graph, VertexWeightsDefaultAndTotal) {
  Graph g(3);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 3.0);
  g.set_vertex_weight(1, 5.5);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 7.5);
  EXPECT_THROW(g.set_vertex_weight(0, -1.0), std::logic_error);
}

TEST(Graph, CutWeight) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 4.0);
  g.add_edge(0, 3, 8.0);
  g.finalize();
  // S = {0, 1}: cut edges (1,2) and (0,3).
  EXPECT_DOUBLE_EQ(g.cut_weight({true, true, false, false}), 10.0);
  EXPECT_DOUBLE_EQ(g.cut_weight({true, true, true, true}), 0.0);
}

TEST(Graph, ConnectedComponents) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  g.finalize();
  auto [comp, count] = ht::graph::connected_components(g);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Graph, ComponentsExcludingSeparator) {
  // Path 0-1-2; removing 1 separates 0 and 2.
  Graph g = ht::graph::path(3);
  auto [comp, count] = ht::graph::connected_components_excluding(
      g, {false, true, false});
  EXPECT_EQ(count, 2);
  EXPECT_EQ(comp[1], -1);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Graph, InducedSubgraph) {
  Graph g(5);
  g.set_vertex_weight(2, 7.0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.finalize();
  const auto sub = ht::graph::induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);  // (1,2) and (2,3)
  EXPECT_DOUBLE_EQ(sub.graph.vertex_weight(1), 7.0);  // old vertex 2
  EXPECT_EQ(sub.old_of_new[0], 1);
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  Graph g = ht::graph::path(4);
  EXPECT_THROW(ht::graph::induced_subgraph(g, {1, 1}), std::logic_error);
}

TEST(Generators, GridShape) {
  const Graph g = ht::graph::grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  // Edges: 3*3 horizontal + 2*4 vertical = 17.
  EXPECT_EQ(g.num_edges(), 17);
  EXPECT_TRUE(ht::graph::is_connected(g));
}

TEST(Generators, CliqueAndStarAndPath) {
  EXPECT_EQ(ht::graph::clique(5).num_edges(), 10);
  EXPECT_EQ(ht::graph::star(6).num_edges(), 6);
  EXPECT_EQ(ht::graph::path(6).num_edges(), 5);
  EXPECT_TRUE(ht::graph::is_connected(ht::graph::clique(4)));
}

TEST(Generators, GnpEdgeCountPlausible) {
  ht::Rng rng(3);
  const Graph g = ht::graph::gnp(60, 0.5, rng);
  const int max_edges = 60 * 59 / 2;
  EXPECT_GT(g.num_edges(), max_edges / 3);
  EXPECT_LT(g.num_edges(), 2 * max_edges / 3);
}

TEST(Generators, GnpConnectedIsConnected) {
  ht::Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = ht::graph::gnp_connected(40, 0.02, rng);
    EXPECT_TRUE(ht::graph::is_connected(g));
  }
}

TEST(Generators, RandomRegularDegreesBounded) {
  ht::Rng rng(5);
  const Graph g = ht::graph::random_regular(30, 4, rng);
  for (VertexId v = 0; v < 30; ++v) EXPECT_LE(g.degree(v), 4);
}

TEST(Generators, PlantedBisectionHasCheapPlantedCut) {
  ht::Rng rng(6);
  const Graph g = ht::graph::planted_bisection(20, 0.4, 3, rng);
  EXPECT_EQ(g.num_vertices(), 40);
  std::vector<bool> planted(40, false);
  for (VertexId v = 20; v < 40; ++v) planted[static_cast<std::size_t>(v)] = true;
  EXPECT_LE(g.cut_weight(planted), 3.0);
}

TEST(Generators, Figure3Shape) {
  const auto fig = ht::graph::figure3_gh(9);
  const Graph& g = fig.graph;
  EXPECT_EQ(g.num_vertices(), 20);  // 2n + 2
  EXPECT_EQ(g.num_edges(), 27);     // 3n
  EXPECT_DOUBLE_EQ(g.vertex_weight(fig.t), 3.0);        // sqrt(9)
  EXPECT_DOUBLE_EQ(g.vertex_weight(fig.v), 9.0);        // n
  EXPECT_DOUBLE_EQ(g.vertex_weight(fig.u[0]), 4.0);     // sqrt(9)+1
  EXPECT_DOUBLE_EQ(g.vertex_weight(fig.w[0]), 1.0);
  EXPECT_TRUE(ht::graph::is_connected(g));
  // Total weight Theta(N sqrt N).
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 3.0 + 9.0 * 4.0 + 9.0 + 9.0);
}

TEST(Generators, Figure3BlowupShape) {
  const auto blow = ht::graph::figure3_blowup(9);  // s = 3
  // Blocks: T(3) + 9 U_i(3 each) + 9 W_i(1) + V(9) = 3+27+9+9 = 48.
  EXPECT_EQ(blow.graph.num_vertices(), 48);
  EXPECT_EQ(blow.core.size(), 9u);
  for (const auto& clique : blow.core) EXPECT_EQ(clique.size(), 3u);
  EXPECT_TRUE(ht::graph::is_connected(blow.graph));
  for (VertexId v = 0; v < blow.graph.num_vertices(); ++v)
    EXPECT_DOUBLE_EQ(blow.graph.vertex_weight(v), 1.0);
}

}  // namespace
