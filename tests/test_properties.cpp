// Cross-module randomized property suites. Each property is the paper's
// own invariant (domination, sandwich bounds, symmetry, exactness-on-
// trees) checked over families of random instances via TEST_P sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bisection.hpp"
#include "core/vertex_bisection.hpp"
#include "cuttree/quality.hpp"
#include "cuttree/tree_bisection.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "partition/exact.hpp"
#include "partition/mku.hpp"
#include "partition/sparsest_cut.hpp"
#include "partition/unbalanced_kcut.hpp"
#include "reduction/mku_bisection.hpp"
#include "reduction/star_expansion.hpp"
#include "util/rng.hpp"

namespace {

using ht::graph::Graph;
using ht::graph::VertexId;
using ht::hypergraph::Hypergraph;

// ---------- domination across generator families ----------

enum class Family { kGnp, kGrid, kRegular, kFigure3 };

struct DominationParam {
  Family family;
  std::int32_t n;
  std::uint64_t seed;
};

Graph make_graph(const DominationParam& p, ht::Rng& rng) {
  switch (p.family) {
    case Family::kGnp:
      return ht::graph::gnp_connected(p.n, 4.0 / p.n, rng);
    case Family::kGrid: {
      const auto side = static_cast<VertexId>(
          std::lround(std::sqrt(static_cast<double>(p.n))));
      return ht::graph::grid(side, side);
    }
    case Family::kRegular:
      return ht::graph::random_regular(p.n, 4, rng);
    case Family::kFigure3:
      return ht::graph::figure3_gh(p.n / 2).graph;
  }
  return {};
}

class DominationProperty : public ::testing::TestWithParam<DominationParam> {
};

TEST_P(DominationProperty, TreeDominatesAndDpMatchesFlow) {
  const auto p = GetParam();
  ht::Rng rng(p.seed);
  const Graph g = make_graph(p, rng);
  const auto n = g.num_vertices();
  ht::cuttree::VertexCutTreeOptions options;
  options.seed = p.seed * 13 + 1;
  const auto built = ht::cuttree::build_vertex_cut_tree(g, options);
  const auto pairs = ht::cuttree::random_set_pairs(
      n, 20, std::max<VertexId>(2, n / 6), rng);
  for (const auto& [a, b] : pairs) {
    const double gamma_g = ht::flow::min_vertex_cut(g, a, b).value;
    const double gamma_t_flow =
        ht::cuttree::tree_vertex_cut_flow(built.tree, a, b);
    const double gamma_t_dp =
        ht::cuttree::tree_vertex_cut_dp(built.tree, a, b);
    EXPECT_GE(gamma_t_flow, gamma_g - 1e-6);            // domination
    EXPECT_NEAR(gamma_t_flow, gamma_t_dp, 1e-6);        // two impls agree
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DominationProperty,
    ::testing::Values(DominationParam{Family::kGnp, 24, 1},
                      DominationParam{Family::kGnp, 48, 2},
                      DominationParam{Family::kGrid, 36, 3},
                      DominationParam{Family::kGrid, 64, 4},
                      DominationParam{Family::kRegular, 30, 5},
                      DominationParam{Family::kRegular, 40, 6},
                      DominationParam{Family::kFigure3, 40, 7},
                      DominationParam{Family::kFigure3, 60, 8}));

// ---------- flow symmetry & monotonicity ----------

class FlowSymmetry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowSymmetry, CutsAreSymmetricInTerminals) {
  ht::Rng rng(GetParam());
  const Graph g = ht::graph::gnp_connected(14, 0.3, rng);
  const Hypergraph h = ht::hypergraph::random_uniform(14, 24, 3, rng);
  for (int trial = 0; trial < 6; ++trial) {
    auto pick = rng.sample_without_replacement(14, 4);
    const std::vector<VertexId> a{pick[0], pick[1]}, b{pick[2], pick[3]};
    EXPECT_NEAR(ht::flow::min_edge_cut(g, a, b).value,
                ht::flow::min_edge_cut(g, b, a).value, 1e-9);
    EXPECT_NEAR(ht::flow::min_vertex_cut(g, a, b).value,
                ht::flow::min_vertex_cut(g, b, a).value, 1e-9);
    EXPECT_NEAR(ht::flow::min_hyperedge_cut(h, a, b).value,
                ht::flow::min_hyperedge_cut(h, b, a).value, 1e-9);
  }
}

TEST_P(FlowSymmetry, AddingEdgesNeverDecreasesCuts) {
  ht::Rng rng(GetParam() * 91 + 7);
  Graph g = ht::graph::gnp_connected(12, 0.25, rng);
  Graph denser(g.num_vertices());
  for (const auto& e : g.edges()) denser.add_edge(e.u, e.v, e.weight);
  for (int extra = 0; extra < 6; ++extra) {
    const auto u = static_cast<VertexId>(rng.next_below(12));
    const auto v = static_cast<VertexId>(rng.next_below(12));
    if (u != v) denser.add_edge(u, v, 1.0 + rng.next_double());
  }
  denser.finalize();
  for (int trial = 0; trial < 5; ++trial) {
    auto pick = rng.sample_without_replacement(12, 2);
    const std::vector<VertexId> a{pick[0]}, b{pick[1]};
    EXPECT_GE(ht::flow::min_edge_cut(denser, a, b).value,
              ht::flow::min_edge_cut(g, a, b).value - 1e-9);
  }
}

TEST_P(FlowSymmetry, ScalingWeightsScalesCuts) {
  ht::Rng rng(GetParam() * 131 + 17);
  const Graph g = ht::graph::gnp_connected(12, 0.3, rng);
  Graph scaled(g.num_vertices());
  const double factor = 3.5;
  for (const auto& e : g.edges()) scaled.add_edge(e.u, e.v, e.weight * factor);
  scaled.finalize();
  auto pick = rng.sample_without_replacement(12, 2);
  const std::vector<VertexId> a{pick[0]}, b{pick[1]};
  EXPECT_NEAR(ht::flow::min_edge_cut(scaled, a, b).value,
              factor * ht::flow::min_edge_cut(g, a, b).value, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowSymmetry,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- Theorem 1 fuzz ----------

struct FuzzParam {
  std::int32_t n;
  std::int32_t m;
  std::int32_t r;
  std::uint64_t seed;
};

class Theorem1Fuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(Theorem1Fuzz, AlwaysValidAndAboveOpt) {
  const auto p = GetParam();
  ht::Rng rng(p.seed);
  const Hypergraph h = ht::hypergraph::random_uniform(p.n, p.m, p.r, rng);
  ht::core::Theorem1Options options;
  options.seed = p.seed;
  options.guesses = 6;
  const auto report = ht::core::bisect_theorem1(h, options);
  ht::partition::validate_bisection(h, report.solution);
  if (p.n <= 16) {
    const auto exact = ht::partition::exact_hypergraph_bisection(h);
    EXPECT_GE(report.solution.cut, exact.cut - 1e-9);
    // On these sizes we also bound the measured ratio loosely.
    EXPECT_LE(report.solution.cut, 3.0 * exact.cut + 3.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, Theorem1Fuzz,
    ::testing::Values(FuzzParam{10, 14, 3, 1}, FuzzParam{12, 20, 4, 2},
                      FuzzParam{14, 28, 3, 3}, FuzzParam{16, 24, 5, 4},
                      FuzzParam{20, 40, 3, 5}, FuzzParam{24, 36, 6, 6},
                      FuzzParam{30, 60, 4, 7}, FuzzParam{40, 80, 3, 8}));

class CutTreeBisectionFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(CutTreeBisectionFuzz, AlwaysValid) {
  const auto p = GetParam();
  ht::Rng rng(p.seed * 7 + 3);
  const Hypergraph h = ht::hypergraph::random_uniform(p.n, p.m, p.r, rng);
  ht::core::CutTreeBisectionOptions options;
  options.seed = p.seed;
  const auto report = ht::core::bisect_via_cut_tree(h, options);
  ht::partition::validate_bisection(h, report.solution);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, CutTreeBisectionFuzz,
    ::testing::Values(FuzzParam{10, 14, 3, 1}, FuzzParam{12, 20, 4, 2},
                      FuzzParam{16, 24, 5, 3}, FuzzParam{20, 40, 3, 4},
                      FuzzParam{24, 36, 6, 5}));

// ---------- sparsest cut: heuristic never beats exact ----------

class SparsestCutBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparsestCutBound, HeuristicAboveExact) {
  ht::Rng rng(GetParam());
  const Hypergraph h = ht::hypergraph::random_uniform(12, 18, 3, rng);
  const auto exact = ht::partition::sparsest_hyperedge_cut_exact(h);
  ht::Rng hrng(GetParam() + 50);
  const auto heur = ht::partition::sparsest_hyperedge_cut(h, hrng);
  if (exact.valid && heur.valid) {
    EXPECT_GE(heur.sparsity, exact.sparsity - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparsestCutBound,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------- k-cut profiles ----------

class KCutProfileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KCutProfileProperty, WitnessesConsistentAndAboveExact) {
  ht::Rng rng(GetParam() * 3 + 1);
  const Hypergraph h = ht::hypergraph::random_uniform(12, 20, 3, rng);
  ht::Rng prng(GetParam());
  const auto profile = ht::partition::unbalanced_kcut_profile(h, 6, prng);
  for (std::int32_t k = 1; k <= 6; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    ASSERT_EQ(profile.sets[idx].size(), static_cast<std::size_t>(k));
    EXPECT_NEAR(profile.cost[idx], h.cut_weight(profile.sets[idx]), 1e-9);
    const auto exact = ht::partition::unbalanced_kcut_exact(h, k);
    EXPECT_GE(profile.cost[idx], exact.cut - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCutProfileProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------- Theorem 3 on random instances ----------

class MkuBisectionRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MkuBisectionRoundTrip, OptimaCoincide) {
  ht::Rng rng(GetParam() * 97 + 13);
  // Random instance with all items covered (patch if needed).
  Hypergraph base(8);
  for (int e = 0; e < 6; ++e) {
    auto pins = rng.sample_without_replacement(8, 3);
    base.add_edge({pins.begin(), pins.end()});
  }
  base.finalize();
  const auto k = static_cast<std::int32_t>(1 + rng.next_below(5));
  ht::reduction::MkuInstance inst{base, k};
  const auto red = ht::reduction::mku_to_bisection(inst);
  const auto bis_opt =
      ht::partition::exact_hypergraph_bisection(red.bisection_instance);
  const auto mku_opt = ht::partition::mku_exact(base, k);
  EXPECT_NEAR(bis_opt.cut, mku_opt.union_weight, 1e-9) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MkuBisectionRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- vertex bisection sandwich ----------

class VertexBisectionSandwich
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VertexBisectionSandwich, ExactBelowTreePipeline) {
  ht::Rng rng(GetParam() * 11 + 5);
  const Graph g = ht::graph::gnp_connected(14, 0.25, rng);
  const auto exact = ht::core::exact_vertex_bisection(g);
  ht::core::VertexBisectionOptions options;
  options.seed = GetParam();
  const auto tree = ht::core::vertex_bisection_via_cut_tree(g, options);
  ht::core::validate_vertex_bisection(g, exact);
  ht::core::validate_vertex_bisection(g, tree);
  EXPECT_GE(tree.separator_weight, exact.separator_weight - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VertexBisectionSandwich,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------- balanced tree DP sanity on star-expansion trees ----------

class TreeDpSanity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeDpSanity, BalancedAndBoundedByTotalWeight) {
  ht::Rng rng(GetParam() * 19 + 3);
  const Hypergraph h = ht::hypergraph::random_uniform(12, 20, 3, rng);
  const auto star = ht::reduction::star_expansion(h);
  ht::cuttree::VertexCutTreeOptions options;
  options.seed = GetParam();
  const auto built = ht::cuttree::build_vertex_cut_tree(star.graph, options);
  std::vector<ht::cuttree::VertexId> counted;
  for (std::int32_t v = 0; v < 12; ++v) counted.push_back(v);
  const auto dp = ht::cuttree::balanced_tree_bisection(built.tree, counted);
  ASSERT_TRUE(dp.valid);
  std::size_t on_one = 0;
  for (bool b : dp.side) on_one += b ? 1 : 0;
  EXPECT_EQ(on_one, counted.size() / 2);
  // Cutting every finite node is always feasible, so the DP optimum is
  // bounded by the finite node weight total.
  double finite_total = 0.0;
  for (ht::cuttree::NodeId x = 0; x < built.tree.num_nodes(); ++x) {
    const double w = built.tree.node_weight(x);
    if (w < ht::cuttree::kInfiniteNodeWeight / 2) finite_total += w;
  }
  EXPECT_LE(dp.tree_cut, finite_total + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeDpSanity,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
