#include <gtest/gtest.h>

#include <cmath>

#include "core/bisection.hpp"
#include "hypergraph/generators.hpp"
#include "partition/exact.hpp"
#include "util/rng.hpp"

namespace {

using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

void expect_valid_bisection(const Hypergraph& h,
                            const ht::core::BisectionReport& report) {
  ht::partition::validate_bisection(h, report.solution);
}

TEST(Theorem1, EdgelessHypergraph) {
  Hypergraph h(6);
  h.finalize();
  const auto report = ht::core::bisect_theorem1(h);
  expect_valid_bisection(h, report);
  EXPECT_DOUBLE_EQ(report.solution.cut, 0.0);
}

TEST(Theorem1, DisconnectedHalvesAreFree) {
  // Two disjoint triangles: the bisection along components costs 0.
  Hypergraph h(6);
  h.add_edge({0, 1, 2});
  h.add_edge({3, 4, 5});
  h.finalize();
  const auto report = ht::core::bisect_theorem1(h);
  expect_valid_bisection(h, report);
  EXPECT_DOUBLE_EQ(report.solution.cut, 0.0);
}

TEST(Theorem1, RecoversPlantedBisection) {
  ht::Rng rng(1);
  const Hypergraph h = ht::hypergraph::planted_bisection(12, 3, 50, 2, rng);
  const auto report = ht::core::bisect_theorem1(h);
  expect_valid_bisection(h, report);
  EXPECT_LE(report.solution.cut, 2.0 + 1e-9);
}

TEST(Theorem1, NearExactOnSmallInstances) {
  ht::Rng rng(2);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 5; ++trial) {
    const Hypergraph h = ht::hypergraph::random_uniform(12, 20, 3, rng);
    const auto exact = ht::partition::exact_hypergraph_bisection(h);
    ht::core::Theorem1Options options;
    options.seed = static_cast<std::uint64_t>(trial) + 10;
    const auto report = ht::core::bisect_theorem1(h, options);
    expect_valid_bisection(h, report);
    EXPECT_GE(report.solution.cut, exact.cut - 1e-9);
    if (exact.cut > 0)
      worst_ratio = std::max(worst_ratio, report.solution.cut / exact.cut);
  }
  // sqrt(12) * polylog is ~10; the measured ratio should be far below it.
  EXPECT_LE(worst_ratio, 3.0);
}

TEST(Theorem1, NoPolishStillValid) {
  ht::Rng rng(3);
  const Hypergraph h = ht::hypergraph::random_uniform(16, 30, 4, rng);
  ht::core::Theorem1Options options;
  options.fm_polish = false;
  const auto report = ht::core::bisect_theorem1(h, options);
  expect_valid_bisection(h, report);
  EXPECT_GT(report.phase1_pieces, 0);
}

TEST(Theorem1, DiagnosticsPopulated) {
  ht::Rng rng(4);
  const Hypergraph h = ht::hypergraph::planted_bisection(10, 3, 30, 3, rng);
  const auto report = ht::core::bisect_theorem1(h);
  EXPECT_GT(report.opt_guess, 0.0);
  EXPECT_GE(report.phase1_pieces, 1);
  EXPECT_EQ(report.algorithm, "theorem1");
}

TEST(Theorem1, RejectsOddInstances) {
  Hypergraph h(3);
  h.add_edge({0, 1, 2});
  h.finalize();
  EXPECT_THROW(ht::core::bisect_theorem1(h), std::logic_error);
}

TEST(Theorem2Small, ValidAndCompetitive) {
  ht::Rng rng(5);
  // Small hyperedges: r = 3 << n.
  const Hypergraph h = ht::hypergraph::random_uniform(20, 40, 3, rng);
  const auto report = ht::core::bisect_small_edges(h);
  expect_valid_bisection(h, report);
  EXPECT_EQ(report.algorithm, "theorem2-small-edges");
  const auto fm = ht::core::bisect_fm_baseline(h, rng);
  // The clique-expansion path should be in the same ballpark as FM.
  EXPECT_LE(report.solution.cut, 2.0 * fm.solution.cut + 4.0);
}

TEST(Theorem2Large, ValidOnLargeEdgeInstances) {
  ht::Rng rng(6);
  // All hyperedges of size n/4: the large-edge regime.
  const Hypergraph h = ht::hypergraph::random_uniform(16, 12, 4, rng);
  const auto report = ht::core::bisect_large_edges(h);
  expect_valid_bisection(h, report);
  EXPECT_EQ(report.algorithm, "theorem2-large-edges");
}

TEST(Corollary3, ValidBisection) {
  ht::Rng rng(7);
  const Hypergraph h = ht::hypergraph::random_uniform(12, 18, 3, rng);
  const auto report = ht::core::bisect_via_cut_tree(h);
  expect_valid_bisection(h, report);
  EXPECT_EQ(report.algorithm, "corollary3-cut-tree");
  EXPECT_GT(report.dp_estimate, 0.0);
}

TEST(Corollary3, RecoversPlantedBisection) {
  ht::Rng rng(8);
  const Hypergraph h = ht::hypergraph::planted_bisection(8, 3, 30, 1, rng);
  ht::core::CutTreeBisectionOptions options;
  const auto report = ht::core::bisect_via_cut_tree(h, options);
  expect_valid_bisection(h, report);
  EXPECT_LE(report.solution.cut, 4.0);
}

TEST(Corollary3, TreeCutUpperBoundsFinalCutBeforePolish) {
  // The DP objective w(X) dominates gamma_T >= gamma_{G'} = delta_H of the
  // produced partition (Lemma 5 + Lemma 7), so before FM polish
  // cut <= dp_estimate.
  ht::Rng rng(9);
  const Hypergraph h = ht::hypergraph::random_uniform(10, 15, 3, rng);
  ht::core::CutTreeBisectionOptions options;
  options.fm_polish = false;
  const auto report = ht::core::bisect_via_cut_tree(h, options);
  expect_valid_bisection(h, report);
  EXPECT_LE(report.solution.cut, report.dp_estimate + 1e-6);
}

TEST(Baselines, FmAndRandomValid) {
  ht::Rng rng(10);
  const Hypergraph h = ht::hypergraph::random_uniform(14, 25, 3, rng);
  const auto fm = ht::core::bisect_fm_baseline(h, rng);
  const auto random = ht::core::bisect_random_baseline(h, rng);
  expect_valid_bisection(h, fm);
  expect_valid_bisection(h, random);
  EXPECT_LE(fm.solution.cut, random.solution.cut + 1e-9);
}

TEST(AllAlgorithms, AgreeOnObviousInstance) {
  // Two dense clusters, single cross edge: everything should find cut <= 1.
  ht::Rng rng(11);
  const Hypergraph h = ht::hypergraph::planted_bisection(10, 3, 60, 1, rng);
  const auto t1 = ht::core::bisect_theorem1(h);
  const auto small = ht::core::bisect_small_edges(h);
  const auto tree = ht::core::bisect_via_cut_tree(h);
  EXPECT_LE(t1.solution.cut, 1.0 + 1e-9);
  EXPECT_LE(small.solution.cut, 1.0 + 1e-9);
  EXPECT_LE(tree.solution.cut, 1.0 + 1e-9);
}

}  // namespace
