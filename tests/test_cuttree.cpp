#include <gtest/gtest.h>

#include <cmath>

#include "cuttree/edge_cut_trees.hpp"
#include "cuttree/quality.hpp"
#include "cuttree/tree.hpp"
#include "cuttree/tree_bisection.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "util/rng.hpp"
#include "util/subsets.hpp"
#include "util/thread_pool.hpp"

namespace {

using ht::cuttree::NodeId;
using ht::cuttree::Tree;
using ht::cuttree::VertexId;

Tree simple_path_tree() {
  // root(w=2) - a(w=1) - b(w=3); vertices 0->a, 1->root, 2->b.
  Tree t;
  t.reserve_vertices(3);
  const NodeId root = t.add_node(-1, 2.0);
  const NodeId a = t.add_node(root, 1.0, 1.0);
  const NodeId b = t.add_node(a, 3.0, 1.0);
  t.set_vertex_node(0, a);
  t.set_vertex_node(1, root);
  t.set_vertex_node(2, b);
  t.validate();
  return t;
}

TEST(Tree, StructureAndValidate) {
  const Tree t = simple_path_tree();
  EXPECT_EQ(t.num_nodes(), 3);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(1), 0);
  EXPECT_EQ(t.children(0).size(), 1u);
  EXPECT_DOUBLE_EQ(t.node_weight(2), 3.0);
}

TEST(Tree, RejectsSecondRoot) {
  Tree t;
  t.add_node(-1, 1.0);
  EXPECT_THROW(t.add_node(-1, 1.0), std::logic_error);
}

TEST(Tree, ValidateCatchesUnmappedVertex) {
  Tree t;
  t.reserve_vertices(1);
  t.add_node(-1, 1.0);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Tree, VertexCutFlowSimple) {
  const Tree t = simple_path_tree();
  // Separate vertex 0 (node a) from vertex 2 (node b): cheapest cut is a
  // itself (w=1) — the cut may contain A.
  EXPECT_DOUBLE_EQ(ht::cuttree::tree_vertex_cut_flow(t, {0}, {2}), 1.0);
  // Separate root-vertex 1 from 2: b costs 3, a costs 1, root costs 2 -> 1.
  EXPECT_DOUBLE_EQ(ht::cuttree::tree_vertex_cut_flow(t, {1}, {2}), 1.0);
}

TEST(Tree, VertexCutDpMatchesFlowOnHandTree) {
  const Tree t = simple_path_tree();
  for (auto& [a, b] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {0, 2}, {1, 2}}) {
    EXPECT_DOUBLE_EQ(ht::cuttree::tree_vertex_cut_flow(t, {a}, {b}),
                     ht::cuttree::tree_vertex_cut_dp(t, {a}, {b}));
  }
}

TEST(Tree, EdgeCutDpSimple) {
  Tree t;
  t.reserve_vertices(3);
  const NodeId root = t.add_node(-1, 1.0);
  const NodeId a = t.add_node(root, 1.0, 5.0);
  const NodeId b = t.add_node(root, 1.0, 2.0);
  t.set_vertex_node(0, root);
  t.set_vertex_node(1, a);
  t.set_vertex_node(2, b);
  EXPECT_DOUBLE_EQ(ht::cuttree::tree_edge_cut_dp(t, {1}, {2}), 2.0);
  EXPECT_DOUBLE_EQ(ht::cuttree::tree_edge_cut_dp(t, {0}, {1}), 5.0);
  EXPECT_DOUBLE_EQ(ht::cuttree::tree_edge_cut_dp(t, {0, 1}, {2}), 2.0);
}

/// Random tree generator for cross-check properties.
Tree random_tree(VertexId n, ht::Rng& rng) {
  Tree t;
  t.reserve_vertices(n);
  std::vector<NodeId> nodes;
  nodes.push_back(t.add_node(-1, 1.0 + rng.next_double() * 4.0));
  const NodeId total = 2 * n;  // some internal nodes without vertices
  for (NodeId i = 1; i < total; ++i) {
    const NodeId parent =
        nodes[static_cast<std::size_t>(rng.next_below(nodes.size()))];
    nodes.push_back(t.add_node(parent, 1.0 + rng.next_double() * 4.0,
                               0.5 + rng.next_double() * 3.0));
  }
  // Embed the n vertices into distinct random nodes.
  std::vector<NodeId> shuffled = nodes;
  rng.shuffle(shuffled);
  for (VertexId v = 0; v < n; ++v)
    t.set_vertex_node(v, shuffled[static_cast<std::size_t>(v)]);
  t.validate();
  return t;
}

class TreeCutCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeCutCrossCheck, FlowEqualsDpOnRandomTrees) {
  ht::Rng rng(GetParam());
  const VertexId n = 8;
  const Tree t = random_tree(n, rng);
  for (int trial = 0; trial < 12; ++trial) {
    auto pick = rng.sample_without_replacement(n, 4);
    const std::vector<VertexId> a{pick[0], pick[1]}, b{pick[2], pick[3]};
    const double flow = ht::cuttree::tree_vertex_cut_flow(t, a, b);
    const double dp = ht::cuttree::tree_vertex_cut_dp(t, a, b);
    EXPECT_NEAR(flow, dp, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeCutCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- Section 3.1 construction ----------

TEST(VertexCutTree, PathGraphShape) {
  const auto g = ht::graph::path(12);
  const auto result = ht::cuttree::build_vertex_cut_tree(g);
  result.tree.validate();
  // Every vertex embedded.
  for (VertexId v = 0; v < 12; ++v)
    EXPECT_NE(result.tree.node_of_vertex(v), -1);
  EXPECT_GE(result.num_pieces, 1);
}

TEST(VertexCutTree, DominationExhaustiveOnSmallGraphs) {
  ht::Rng rng(11);
  for (int trial = 0; trial < 4; ++trial) {
    const auto g = ht::graph::gnp_connected(9, 0.3, rng);
    const auto result = ht::cuttree::build_vertex_cut_tree(g);
    // All singleton pairs: gamma_G <= gamma_T.
    for (VertexId s = 0; s < 9; ++s) {
      for (VertexId t = s + 1; t < 9; ++t) {
        const double gg = ht::flow::min_vertex_cut(g, {s}, {t}).value;
        const double gt =
            ht::cuttree::tree_vertex_cut_flow(result.tree, {s}, {t});
        EXPECT_GE(gt, gg - 1e-9) << "pair " << s << "," << t;
      }
    }
  }
}

TEST(VertexCutTree, DominationOnSetPairs) {
  ht::Rng rng(13);
  const auto g = ht::graph::grid(5, 5);
  const auto result = ht::cuttree::build_vertex_cut_tree(g);
  const auto pairs = ht::cuttree::random_set_pairs(25, 40, 5, rng);
  const auto report =
      ht::cuttree::vertex_cut_tree_quality(g, result.tree, pairs);
  EXPECT_TRUE(report.dominating) << "min ratio " << report.min_ratio;
  EXPECT_GE(report.max_ratio, 1.0);
}

TEST(VertexCutTree, WeightedGraphDomination) {
  const auto fig = ht::graph::figure3_gh(16);
  const auto result = ht::cuttree::build_vertex_cut_tree(fig.graph);
  ht::Rng rng(17);
  const auto pairs =
      ht::cuttree::random_set_pairs(fig.graph.num_vertices(), 30, 4, rng);
  const auto report =
      ht::cuttree::vertex_cut_tree_quality(fig.graph, result.tree, pairs);
  EXPECT_TRUE(report.dominating);
}

TEST(VertexCutTree, ThresholdOverrideControlsPeeling) {
  const auto g = ht::graph::grid(4, 4);
  ht::cuttree::VertexCutTreeOptions aggressive;
  aggressive.threshold_override = 0.45;  // peel a lot
  ht::cuttree::VertexCutTreeOptions timid;
  timid.threshold_override = 1e-9;  // peel nothing
  const auto many = ht::cuttree::build_vertex_cut_tree(g, aggressive);
  const auto one = ht::cuttree::build_vertex_cut_tree(g, timid);
  EXPECT_GT(many.num_pieces, one.num_pieces);
  EXPECT_EQ(one.num_pieces, 1);
  EXPECT_TRUE(one.separator_vertices.empty());
}

TEST(VertexCutTree, DisconnectedGraphSeparatesForFree) {
  ht::graph::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  g.finalize();
  const auto result = ht::cuttree::build_vertex_cut_tree(g);
  // Cross-component pairs have gamma_G = 0; tree must not overcharge
  // much — and with an empty separator the root is free.
  const double tree_cut =
      ht::cuttree::tree_vertex_cut_flow(result.tree, {0}, {2});
  EXPECT_DOUBLE_EQ(tree_cut, 0.0);
}

TEST(VertexCutTree, DeterministicAcrossThreadCounts) {
  // The determinism contract: piece RNG streams derive from
  // (seed, piece index), never from scheduling, so a 1-thread build and a
  // 4-thread build of the same instance are byte-identical.
  ht::Rng rng(20260805);
  const auto g = ht::graph::gnp_connected(96, 4.0 / 96, rng);
  auto build = [&g] { return ht::cuttree::build_vertex_cut_tree(g); };

  ht::ThreadPool::reset_global(1);
  const auto serial = build();
  ht::ThreadPool::reset_global(4);
  const auto parallel = build();
  ht::ThreadPool::reset_global();

  EXPECT_EQ(ht::cuttree::tree_signature(serial.tree),
            ht::cuttree::tree_signature(parallel.tree));
  EXPECT_EQ(serial.separator_vertices, parallel.separator_vertices);
  EXPECT_EQ(serial.num_pieces, parallel.num_pieces);
  EXPECT_DOUBLE_EQ(serial.separator_weight, parallel.separator_weight);
}

// ---------- Corollary 3 DP ----------

TEST(TreeBisection, SimpleStarTree) {
  // Root with 4 vertex leaves; cutting the root (w=1) allows any split.
  Tree t;
  t.reserve_vertices(4);
  const NodeId root = t.add_node(-1, 1.0);
  for (VertexId v = 0; v < 4; ++v)
    t.set_vertex_node(v, t.add_node(root, 10.0));
  const auto result =
      ht::cuttree::balanced_tree_bisection(t, {0, 1, 2, 3});
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.tree_cut, 1.0);
  int on_one = 0;
  for (bool b : result.side) on_one += b ? 1 : 0;
  EXPECT_EQ(on_one, 2);
}

TEST(TreeBisection, PrefersCheapLeaves) {
  // Root(w=100) with leaves w={1,1,50,50}: cutting two cheap leaves (cost 2)
  // beats the root.
  Tree t;
  t.reserve_vertices(4);
  const NodeId root = t.add_node(-1, 100.0);
  t.set_vertex_node(0, t.add_node(root, 1.0));
  t.set_vertex_node(1, t.add_node(root, 1.0));
  t.set_vertex_node(2, t.add_node(root, 50.0));
  t.set_vertex_node(3, t.add_node(root, 50.0));
  const auto result = ht::cuttree::balanced_tree_bisection(t, {0, 1, 2, 3});
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.tree_cut, 2.0);
}

TEST(TreeBisection, CutsLeavesWhenCheaperThanRoot) {
  // Two anchors with two unit leaves each under a root of weight 5.
  // Cutting the root (5) separates the anchors, but cutting two unit
  // leaves (2) and redistributing them as free vertices is cheaper.
  Tree t;
  t.reserve_vertices(4);
  const NodeId root = t.add_node(-1, 5.0);
  const NodeId a1 = t.add_node(root, ht::cuttree::kInfiniteNodeWeight);
  const NodeId a2 = t.add_node(root, ht::cuttree::kInfiniteNodeWeight);
  t.set_vertex_node(0, t.add_node(a1, 1.0));
  t.set_vertex_node(1, t.add_node(a1, 1.0));
  t.set_vertex_node(2, t.add_node(a2, 1.0));
  t.set_vertex_node(3, t.add_node(a2, 1.0));
  const auto result = ht::cuttree::balanced_tree_bisection(t, {0, 1, 2, 3});
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.tree_cut, 2.0);
  int on_one = 0;
  for (bool b : result.side) on_one += b ? 1 : 0;
  EXPECT_EQ(on_one, 2);
}

TEST(TreeBisection, RootCutWhenLeavesAreExpensive) {
  // Same shape but leaves of weight 10: now the root (5) wins and the
  // subtrees become the two sides.
  Tree t;
  t.reserve_vertices(4);
  const NodeId root = t.add_node(-1, 5.0);
  const NodeId a1 = t.add_node(root, ht::cuttree::kInfiniteNodeWeight);
  const NodeId a2 = t.add_node(root, ht::cuttree::kInfiniteNodeWeight);
  t.set_vertex_node(0, t.add_node(a1, 10.0));
  t.set_vertex_node(1, t.add_node(a1, 10.0));
  t.set_vertex_node(2, t.add_node(a2, 10.0));
  t.set_vertex_node(3, t.add_node(a2, 10.0));
  const auto result = ht::cuttree::balanced_tree_bisection(t, {0, 1, 2, 3});
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.tree_cut, 5.0);
  EXPECT_NE(result.side[0], result.side[2]);
  EXPECT_EQ(result.side[0], result.side[1]);
  EXPECT_EQ(result.side[2], result.side[3]);
}

TEST(TreeBisection, BruteForceCrossCheck) {
  // Exhaustive check on random small trees: DP tree_cut equals the best
  // over all (cut set, coloring) combinations.
  ht::Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    const VertexId n = 6;
    const Tree t = random_tree(n, rng);
    const auto dp = ht::cuttree::balanced_tree_bisection(t, {0, 1, 2, 3, 4, 5});
    ASSERT_TRUE(dp.valid);
    // Brute force: enumerate cut subsets of tree nodes; components of the
    // remaining forest must 2-color so counted vertices balance; counted
    // vertices at cut nodes are free.
    const NodeId tn = t.num_nodes();
    double best = 1e300;
    ht::for_each_subset(tn, [&](std::uint32_t mask) {
      double w = 0.0;
      for (NodeId x = 0; x < tn; ++x)
        if (mask & (1u << x)) w += t.node_weight(x);
      if (w >= best) return;
      // Components of the forest.
      std::vector<std::int32_t> comp(static_cast<std::size_t>(tn), -1);
      std::int32_t comps = 0;
      for (NodeId x = 0; x < tn; ++x) {
        if (mask & (1u << x)) continue;
        const NodeId p = t.parent(x);
        if (p != -1 && !(mask & (1u << p))) {
          comp[static_cast<std::size_t>(x)] = comp[static_cast<std::size_t>(p)];
        } else {
          comp[static_cast<std::size_t>(x)] = comps++;
        }
      }
      // Counted vertices per component; free = at cut nodes.
      std::vector<std::int32_t> per_comp(static_cast<std::size_t>(comps), 0);
      std::int32_t free_count = 0;
      for (VertexId v = 0; v < n; ++v) {
        const NodeId node = t.node_of_vertex(v);
        if (mask & (1u << node)) {
          ++free_count;
        } else {
          ++per_comp[static_cast<std::size_t>(
              comp[static_cast<std::size_t>(node)])];
        }
      }
      // Subset-sum over components to hit n/2 (with free vertices flexible).
      std::vector<bool> reachable(static_cast<std::size_t>(n) + 1, false);
      reachable[0] = true;
      for (std::int32_t c = 0; c < comps; ++c) {
        std::vector<bool> next(reachable.size(), false);
        for (std::size_t s = 0; s < reachable.size(); ++s) {
          if (!reachable[s]) continue;
          next[s] = true;
          const std::size_t add =
              s + static_cast<std::size_t>(
                      per_comp[static_cast<std::size_t>(c)]);
          if (add < next.size()) next[add] = true;
        }
        reachable = std::move(next);
      }
      const std::int32_t half = n / 2;
      for (std::int32_t s = 0; s <= half; ++s) {
        if (reachable[static_cast<std::size_t>(s)] && s + free_count >= half) {
          best = std::min(best, w);
          return;
        }
      }
    });
    EXPECT_NEAR(dp.tree_cut, best, 1e-9) << "trial " << trial;
  }
}

// ---------- edge cut tree candidates ----------

TEST(EdgeCutTrees, TopologiesValidate) {
  ht::Rng rng(29);
  ht::cuttree::star_topology(8).validate();
  ht::cuttree::path_topology({0, 1, 2, 3}).validate();
  ht::cuttree::balanced_binary_topology({0, 1, 2, 3, 4, 5}).validate();
  ht::cuttree::random_topology(10, rng).validate();
}

TEST(EdgeCutTrees, GomoryHuTopologyEmbedsAll) {
  ht::Rng rng(31);
  const auto h = ht::hypergraph::random_uniform(10, 16, 3, rng);
  if (!ht::hypergraph::is_connected(h)) GTEST_SKIP();
  const Tree t = ht::cuttree::gomory_hu_topology(h);
  for (VertexId v = 0; v < 10; ++v) EXPECT_NE(t.node_of_vertex(v), -1);
}

TEST(EdgeCutTrees, InducedWeightsDominate) {
  ht::Rng rng(37);
  const auto h = ht::hypergraph::random_uniform(9, 14, 3, rng);
  for (auto make : {+[](VertexId n, ht::Rng& r) {
                      (void)r;
                      return ht::cuttree::star_topology(n);
                    },
                    +[](VertexId n, ht::Rng& r) {
                      return ht::cuttree::random_topology(n, r);
                    }}) {
    Tree t = make(9, rng);
    ht::cuttree::assign_induced_weights(h, t);
    for (int trial = 0; trial < 12; ++trial) {
      auto pick = rng.sample_without_replacement(9, 2);
      const std::vector<VertexId> a{pick[0]}, b{pick[1]};
      const double dh = ht::flow::min_hyperedge_cut(h, a, b).value;
      const double dt = ht::cuttree::tree_edge_cut_dp(t, a, b);
      EXPECT_GE(dt, dh - 1e-9);
    }
  }
}

TEST(EdgeCutTrees, StarQualityOnSpanningEdgeIsLinear) {
  // Theorem 6 intuition made concrete: on the single-spanning-hyperedge
  // instance, the star tree with induced weights has quality Theta(n).
  const VertexId n = 12;
  const auto h = ht::hypergraph::single_spanning_edge(n);
  Tree t = ht::cuttree::star_topology(n);
  ht::cuttree::assign_induced_weights(h, t);
  // Balanced split: tree pays n/2 edges of weight 1, hypergraph pays 1.
  std::vector<VertexId> a, b;
  for (VertexId v = 0; v < n; ++v) (v < n / 2 ? a : b).push_back(v);
  const double dt = ht::cuttree::tree_edge_cut_dp(t, a, b);
  const double dh = ht::flow::min_hyperedge_cut(h, a, b).value;
  EXPECT_DOUBLE_EQ(dh, 1.0);
  EXPECT_DOUBLE_EQ(dt, static_cast<double>(n / 2));
}

// ---------- quality helpers ----------

TEST(Quality, SingletonPairsCount) {
  EXPECT_EQ(ht::cuttree::all_singleton_pairs(5).size(), 10u);
}

TEST(Quality, RandomSetPairsDisjoint) {
  ht::Rng rng(41);
  const auto pairs = ht::cuttree::random_set_pairs(20, 50, 4, rng);
  EXPECT_EQ(pairs.size(), 50u);
  for (const auto& [a, b] : pairs) {
    EXPECT_FALSE(a.empty());
    EXPECT_FALSE(b.empty());
    for (VertexId x : a)
      for (VertexId y : b) EXPECT_NE(x, y);
  }
}


// ---------- from_arrays error paths ----------

TEST(TreeFromArrays, RoundTripsAValidTree) {
  const std::vector<ht::cuttree::NodeId> parent = {-1, 0, 0, 1};
  const std::vector<double> node_weight = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> edge_weight = {0.0, 5.0, 6.0, 7.0};
  const std::vector<ht::cuttree::NodeId> vertex_node = {3, 2, 1};
  const auto tree = Tree::from_arrays(parent, node_weight, edge_weight,
                                      vertex_node);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 4);
  EXPECT_EQ(tree->root(), 0);
  EXPECT_EQ(tree->node_of_vertex(0), 3);
  EXPECT_DOUBLE_EQ(tree->edge_weight(3), 7.0);
}

TEST(TreeFromArrays, RejectsEmptyArrays) {
  const auto tree = Tree::from_arrays({}, {}, {}, {});
  EXPECT_EQ(tree.status().code(), ht::StatusCode::kInvalidArgument);
}

TEST(TreeFromArrays, RejectsLengthMismatch) {
  const std::vector<ht::cuttree::NodeId> parent = {-1, 0};
  const std::vector<double> node_weight = {1.0, 2.0};
  const std::vector<double> edge_weight = {0.0};  // one short
  const std::vector<ht::cuttree::NodeId> vertex_node = {0};
  const auto tree = Tree::from_arrays(parent, node_weight, edge_weight,
                                      vertex_node);
  EXPECT_EQ(tree.status().code(), ht::StatusCode::kInvalidArgument);
}

TEST(TreeFromArrays, RejectsRootWithParent) {
  const std::vector<ht::cuttree::NodeId> parent = {1, -1};
  const std::vector<double> weights = {1.0, 1.0};
  const std::vector<ht::cuttree::NodeId> vertex_node = {0};
  const auto tree = Tree::from_arrays(parent, weights, weights, vertex_node);
  EXPECT_EQ(tree.status().code(), ht::StatusCode::kInvalidArgument);
}

TEST(TreeFromArrays, RejectsParentOutOfTopologicalOrder) {
  // Node 1 claims node 2 as parent: parents must precede children.
  const std::vector<ht::cuttree::NodeId> parent = {-1, 2, 0};
  const std::vector<double> weights = {1.0, 1.0, 1.0};
  const std::vector<ht::cuttree::NodeId> vertex_node = {0};
  const auto tree = Tree::from_arrays(parent, weights, weights, vertex_node);
  EXPECT_EQ(tree.status().code(), ht::StatusCode::kInvalidArgument);
}

TEST(TreeFromArrays, RejectsVertexEmbeddingOutOfRange) {
  const std::vector<ht::cuttree::NodeId> parent = {-1, 0};
  const std::vector<double> weights = {1.0, 1.0};
  const std::vector<ht::cuttree::NodeId> vertex_node = {2};  // only 2 nodes
  const auto tree = Tree::from_arrays(parent, weights, weights, vertex_node);
  EXPECT_EQ(tree.status().code(), ht::StatusCode::kInvalidArgument);
}

TEST(TreeFromArrays, LiftVerticesReembedsThroughAContractionMap) {
  const std::vector<ht::cuttree::NodeId> parent = {-1, 0, 0};
  const std::vector<double> weights = {1.0, 1.0, 1.0};
  const std::vector<ht::cuttree::NodeId> vertex_node = {1, 2};
  auto tree = Tree::from_arrays(parent, weights, weights, vertex_node);
  ASSERT_TRUE(tree.ok());
  // Four original vertices contracted 2:1 onto the embedded pair.
  const std::vector<ht::cuttree::VertexId> to_current = {0, 0, 1, 1};
  tree->lift_vertices(to_current);
  EXPECT_EQ(tree->num_embedded_vertices(), 4);
  EXPECT_EQ(tree->node_of_vertex(0), 1);
  EXPECT_EQ(tree->node_of_vertex(1), 1);
  EXPECT_EQ(tree->node_of_vertex(2), 2);
  EXPECT_EQ(tree->node_of_vertex(3), 2);
  tree->validate();
}

}  // namespace
