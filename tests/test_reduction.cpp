#include <gtest/gtest.h>

#include <cmath>

#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "reduction/clique_expansion.hpp"
#include "reduction/dks_mku.hpp"
#include "reduction/mku_bisection.hpp"
#include "reduction/star_expansion.hpp"
#include "util/rng.hpp"
#include "util/subsets.hpp"

namespace {

using ht::graph::Graph;
using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

// ---------- Lemma 1: clique expansion ----------

TEST(CliqueExpansion, TriangleFromThreeEdge) {
  Hypergraph h(3);
  h.add_edge({0, 1, 2}, 2.0);
  h.finalize();
  const Graph g = ht::reduction::clique_expansion(h);
  EXPECT_EQ(g.num_edges(), 3);
  for (const auto& e : g.edges()) EXPECT_DOUBLE_EQ(e.weight, 1.0);  // 2/(3-1)
}

TEST(CliqueExpansion, PreservesVertexWeights) {
  Hypergraph h(3);
  h.set_vertex_weight(1, 9.0);
  h.add_edge({0, 1, 2});
  h.finalize();
  const Graph g = ht::reduction::clique_expansion(h);
  EXPECT_DOUBLE_EQ(g.vertex_weight(1), 9.0);
}

TEST(CliqueExpansion, Lemma1BoundFormula) {
  EXPECT_DOUBLE_EQ(ht::reduction::lemma1_bound(3, 10), 3.0);
  EXPECT_DOUBLE_EQ(ht::reduction::lemma1_bound(10, 6), 3.0);
  EXPECT_DOUBLE_EQ(ht::reduction::lemma1_bound(1, 2), 1.0);
}

struct Lemma1Param {
  int n;
  int m;
  int r;
  std::uint64_t seed;
};

class Lemma1Property : public ::testing::TestWithParam<Lemma1Param> {};

TEST_P(Lemma1Property, SandwichHolds) {
  const auto p = GetParam();
  ht::Rng rng(p.seed);
  const Hypergraph h = ht::hypergraph::random_uniform(p.n, p.m, p.r, rng);
  const Graph g = ht::reduction::clique_expansion(h);
  for (int trial = 0; trial < 24; ++trial) {
    const auto k = static_cast<std::int32_t>(
        1 + rng.next_below(static_cast<std::uint64_t>(p.n - 1)));
    const auto set = rng.sample_without_replacement(p.n, k);
    std::vector<bool> side(static_cast<std::size_t>(p.n), false);
    for (auto v : set) side[static_cast<std::size_t>(v)] = true;
    const double dh = h.cut_weight(side);
    const double dg = g.cut_weight(side);
    const double bound = ht::reduction::lemma1_bound(k, h.max_edge_size());
    EXPECT_LE(dh, dg + 1e-9);
    EXPECT_LE(dg, bound * dh + 1e-9)
        << "k=" << k << " hmax=" << h.max_edge_size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomHypergraphs, Lemma1Property,
    ::testing::Values(Lemma1Param{10, 15, 3, 1}, Lemma1Param{12, 20, 4, 2},
                      Lemma1Param{14, 18, 5, 3}, Lemma1Param{16, 25, 6, 4},
                      Lemma1Param{12, 30, 8, 5}));

// ---------- Lemma 7: star expansion ----------

TEST(StarExpansion, Structure) {
  Hypergraph h(3);
  h.add_edge({0, 1}, 1.0);
  h.add_edge({0, 1, 2}, 1.0);
  h.finalize();
  const auto star = ht::reduction::star_expansion(h);
  EXPECT_EQ(star.graph.num_vertices(), 5);       // 3 vertices + 2 edges
  EXPECT_EQ(star.graph.num_edges(), 5);          // total pin count
  EXPECT_DOUBLE_EQ(star.graph.vertex_weight(0), 3.0);  // deg 2 + 1
  EXPECT_DOUBLE_EQ(star.graph.vertex_weight(2), 2.0);  // deg 1 + 1
  EXPECT_DOUBLE_EQ(star.graph.vertex_weight(star.node_of_edge(0)), 1.0);
}

struct Lemma7Param {
  int n;
  int m;
  int r;
  std::uint64_t seed;
};

class Lemma7Property : public ::testing::TestWithParam<Lemma7Param> {};

TEST_P(Lemma7Property, VertexCutEqualsHyperedgeCut) {
  const auto p = GetParam();
  ht::Rng rng(p.seed * 17 + 5);
  const Hypergraph h = ht::hypergraph::random_uniform(p.n, p.m, p.r, rng);
  const auto star = ht::reduction::star_expansion(h);
  for (int trial = 0; trial < 10; ++trial) {
    auto pick = rng.sample_without_replacement(p.n, 2);
    const std::vector<VertexId> a{pick[0]}, b{pick[1]};
    const double delta = ht::flow::min_hyperedge_cut(h, a, b).value;
    const double gamma = ht::flow::min_vertex_cut(star.graph, a, b).value;
    EXPECT_NEAR(delta, gamma, 1e-9);
  }
}

TEST_P(Lemma7Property, SetPairsToo) {
  const auto p = GetParam();
  ht::Rng rng(p.seed * 23 + 11);
  const Hypergraph h = ht::hypergraph::random_uniform(p.n, p.m, p.r, rng);
  const auto star = ht::reduction::star_expansion(h);
  for (int trial = 0; trial < 6; ++trial) {
    auto pick = rng.sample_without_replacement(p.n, 4);
    const std::vector<VertexId> a{pick[0], pick[1]}, b{pick[2], pick[3]};
    const double delta = ht::flow::min_hyperedge_cut(h, a, b).value;
    const double gamma = ht::flow::min_vertex_cut(star.graph, a, b).value;
    EXPECT_NEAR(delta, gamma, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomHypergraphs, Lemma7Property,
    ::testing::Values(Lemma7Param{8, 10, 3, 1}, Lemma7Param{10, 14, 4, 2},
                      Lemma7Param{12, 16, 3, 3}, Lemma7Param{14, 12, 5, 4}));

// ---------- Theorem 3: MkU -> Bisection ----------

Hypergraph small_mku_instance() {
  // 5 items, 4 sets: {0,1}, {1,2}, {2,3,4}, {0,4}.
  Hypergraph h(5);
  h.add_edge({0, 1});
  h.add_edge({1, 2});
  h.add_edge({2, 3, 4});
  h.add_edge({0, 4});
  h.finalize();
  return h;
}

TEST(MkuBisection, SmallKRegimeStructure) {
  ht::reduction::MkuInstance inst{small_mku_instance(), 2};  // k=2 < (4+1)/2
  const auto red = ht::reduction::mku_to_bisection(inst);
  // m=4 sets, p = m+1-2k = 1, total = 4+1+1 = 6 vertices.
  EXPECT_EQ(red.bisection_instance.num_vertices(), 6);
  EXPECT_EQ(red.num_padding, 1);
  EXPECT_FALSE(red.padding_glued);
  // One hyperedge per item.
  EXPECT_EQ(red.bisection_instance.num_edges(), 5);
  // Every hyperedge contains the supervertex.
  for (ht::hypergraph::EdgeId e = 0; e < 5; ++e) {
    bool has_super = false;
    for (VertexId v : red.bisection_instance.pins(e))
      has_super |= v == red.supervertex;
    EXPECT_TRUE(has_super);
  }
}

TEST(MkuBisection, LargeKRegimeGluesPadding) {
  ht::reduction::MkuInstance inst{small_mku_instance(), 3};  // k=3 > (4+1)/2
  const auto red = ht::reduction::mku_to_bisection(inst);
  // p = 2k - m - 1 = 1; total = 6.
  EXPECT_EQ(red.bisection_instance.num_vertices(), 6);
  EXPECT_TRUE(red.padding_glued);
  // Extra glue edges beyond the 5 item edges.
  EXPECT_EQ(red.bisection_instance.num_edges(), 6);
}

TEST(MkuBisection, OptimalCostsMatch) {
  // Exhaustively: min bisection cost of the reduced instance equals the
  // optimal MkU union size, in both k regimes.
  for (std::int32_t k : {1, 2, 3, 4}) {
    ht::reduction::MkuInstance inst{small_mku_instance(), k};
    const auto red = ht::reduction::mku_to_bisection(inst);
    const Hypergraph& bis = red.bisection_instance;
    const int nb = bis.num_vertices();
    // Brute-force optimal bisection.
    double best_bisection = 1e300;
    ht::for_each_subset(nb - 1, [&](std::uint32_t mask) {
      if (ht::popcount32(mask) != nb / 2) return;
      std::vector<bool> side(static_cast<std::size_t>(nb), false);
      for (int v = 0; v + 1 < nb; ++v)
        side[static_cast<std::size_t>(v)] = (mask >> v) & 1u;
      // vertex nb-1 stays on side 0
      best_bisection = std::min(best_bisection, bis.cut_weight(side));
    });
    // Brute-force optimal MkU.
    double best_union = 1e300;
    ht::for_each_combination(
        inst.hypergraph.num_edges(), k, [&](const std::vector<int>& idx) {
          std::vector<ht::hypergraph::EdgeId> sets(idx.begin(), idx.end());
          best_union = std::min(
              best_union,
              ht::reduction::mku_union_weight(inst.hypergraph, sets));
        });
    EXPECT_NEAR(best_bisection, best_union, 1e-9) << "k=" << k;
  }
}

TEST(MkuBisection, ExtractRecoversFeasibleSolution) {
  ht::reduction::MkuInstance inst{small_mku_instance(), 2};
  const auto red = ht::reduction::mku_to_bisection(inst);
  const Hypergraph& bis = red.bisection_instance;
  // Hand-build a bisection: supervertex + sets {2,3} on one side.
  std::vector<bool> with_super(static_cast<std::size_t>(bis.num_vertices()),
                               false);
  with_super[static_cast<std::size_t>(red.supervertex)] = true;
  with_super[2] = true;
  with_super[3] = true;  // sets 2,3 with supervertex; sets 0,1 + padding across
  const auto chosen = red.extract_mku_solution(with_super, 2);
  EXPECT_EQ(chosen.size(), 2u);
  // Chosen sets are 0 and 1; union = {0,1,2} -> weight 3 == bisection cost.
  const double union_w =
      ht::reduction::mku_union_weight(inst.hypergraph, chosen);
  EXPECT_DOUBLE_EQ(union_w, bis.cut_weight(with_super));
}

TEST(MkuBisection, SkipsUncoveredItems) {
  // Item 2 belongs to no set: it can never appear in a union, so the
  // reduction simply emits no hyperedge for it.
  Hypergraph h(3);
  h.add_edge({0, 1});
  h.finalize();
  ht::reduction::MkuInstance inst{std::move(h), 1};
  const auto red = ht::reduction::mku_to_bisection(inst);
  // Items 0 and 1 each produce a {w, set0} hyperedge; item 2 none.
  EXPECT_EQ(red.bisection_instance.num_edges(), 2);
  // Optimal bisection: v0 vs w cuts both item edges = union weight 2.
  EXPECT_EQ(red.bisection_instance.num_vertices(), 2);
}

// ---------- Theorem 4: DkS -> MkU ----------

TEST(DksMku, InstanceShape) {
  const Graph g = ht::graph::clique(4);
  const auto inst = ht::reduction::dks_to_mku(g, 3);
  EXPECT_EQ(inst.hypergraph.num_vertices(), 4);
  EXPECT_EQ(inst.hypergraph.num_edges(), 6);
  EXPECT_EQ(inst.k, 3);
  for (ht::hypergraph::EdgeId e = 0; e < 6; ++e)
    EXPECT_EQ(inst.hypergraph.edge_size(e), 2);
}

TEST(DksMku, InducedEdges) {
  const Graph g = ht::graph::clique(5);
  EXPECT_EQ(ht::reduction::induced_edges(g, {0, 1, 2}), 3);
  EXPECT_EQ(ht::reduction::induced_edges(g, {4}), 0);
}

TEST(DksMku, PruneKeepsDensePart) {
  // Triangle {0,1,2} plus pendant path 3-4: pruning 5 -> 3 keeps the
  // triangle.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.finalize();
  const auto pruned = ht::reduction::prune_to_k(g, {0, 1, 2, 3, 4}, 3);
  EXPECT_EQ(ht::reduction::induced_edges(g, pruned), 3);
}

TEST(DksMku, SolutionMappingCountsEdges) {
  const Graph g = ht::graph::clique(4);
  // Choose MkU edges 0=(0,1), 1=(0,2), 2=(0,3): union {0,1,2,3}; prune to 3.
  const auto s = ht::reduction::mku_solution_to_dks(g, {0, 1, 2}, 3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(ht::reduction::induced_edges(g, s), 3);
}

TEST(DksMku, PadsWhenUnionTooSmall) {
  const Graph g = ht::graph::path(6);
  // One chosen edge covers 2 vertices; k = 4 forces padding.
  const auto s = ht::reduction::mku_solution_to_dks(g, {0}, 4);
  EXPECT_EQ(s.size(), 4u);
}

}  // namespace
