#include <gtest/gtest.h>

#include <cmath>

#include "core/bicriteria.hpp"
#include "core/bisection.hpp"
#include "hypergraph/generators.hpp"
#include "reduction/mku_bisection.hpp"
#include "util/rng.hpp"

namespace {

using ht::hypergraph::Hypergraph;
using ht::hypergraph::VertexId;

void check_result(const Hypergraph& h,
                  const ht::core::BicriteriaResult& r, double fraction) {
  ASSERT_TRUE(r.valid);
  std::int64_t on_one = 0;
  for (bool b : r.side) on_one += b ? 1 : 0;
  const auto n = static_cast<std::int64_t>(h.num_vertices());
  const std::int64_t smaller = std::min(on_one, n - on_one);
  EXPECT_GE(smaller,
            static_cast<std::int64_t>(std::ceil(fraction * n)) - 0);
  EXPECT_NEAR(r.cut, h.cut_weight(r.side), 1e-9);
  EXPECT_NEAR(r.balance, static_cast<double>(smaller) / n, 1e-9);
}

TEST(Bicriteria, ValidOnRandomInstances) {
  ht::Rng rng(1);
  for (int trial = 0; trial < 4; ++trial) {
    const Hypergraph h = ht::hypergraph::random_uniform(30, 60, 3, rng);
    ht::core::BicriteriaOptions options;
    options.seed = static_cast<std::uint64_t>(trial);
    const auto r = ht::core::bisect_bicriteria(h, options);
    check_result(h, r, options.min_side_fraction);
  }
}

TEST(Bicriteria, NeverWorseThanTrueBisection) {
  // Relaxing the balance constraint can only help: the balanced optimum is
  // a feasible bi-criteria solution, so a decent bi-criteria heuristic
  // should not exceed the theorem-1 balanced cut by much — and on hard
  // instances it should be strictly cheaper.
  ht::Rng rng(2);
  const Hypergraph h = ht::hypergraph::planted_bisection(16, 3, 60, 3, rng);
  const auto balanced = ht::core::bisect_theorem1(h);
  ht::core::BicriteriaOptions options;
  const auto relaxed = ht::core::bisect_bicriteria(h, options);
  check_result(h, relaxed, options.min_side_fraction);
  EXPECT_LE(relaxed.cut, balanced.solution.cut + 1e-9);
}

TEST(Bicriteria, CheapOnTheoremThreeInstances) {
  // The Theorem 3 hard instances hinge on exact balance: with slack, one
  // can park the supervertex's side greedily and cut almost nothing
  // relative to the balanced optimum.
  Hypergraph base(8);
  ht::Rng rng(3);
  for (int e = 0; e < 6; ++e) {
    auto pins = rng.sample_without_replacement(8, 3);
    base.add_edge({pins.begin(), pins.end()});
  }
  base.finalize();
  ht::reduction::MkuInstance inst{base, 2};
  const auto red = ht::reduction::mku_to_bisection(inst);
  const auto balanced = ht::core::bisect_theorem1(red.bisection_instance);
  ht::core::BicriteriaOptions options;
  const auto relaxed = ht::core::bisect_bicriteria(red.bisection_instance,
                                                   options);
  check_result(red.bisection_instance, relaxed, options.min_side_fraction);
  EXPECT_LE(relaxed.cut, balanced.solution.cut + 1e-9);
}

TEST(Bicriteria, TightFractionStillBalances) {
  ht::Rng rng(4);
  const Hypergraph h = ht::hypergraph::random_uniform(24, 40, 3, rng);
  ht::core::BicriteriaOptions options;
  options.min_side_fraction = 0.5;  // exact balance via the top-up loop
  const auto r = ht::core::bisect_bicriteria(h, options);
  check_result(h, r, 0.5);
}

TEST(Bicriteria, SpanningEdgeInstance) {
  const Hypergraph h = ht::hypergraph::single_spanning_edge(12, 4.0);
  const auto r = ht::core::bisect_bicriteria(h);
  check_result(h, r, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.cut, 4.0);  // any split cuts the one edge
}

TEST(Bicriteria, RejectsBadFraction) {
  Hypergraph h(4);
  h.add_edge({0, 1});
  h.finalize();
  ht::core::BicriteriaOptions options;
  options.min_side_fraction = 0.7;
  EXPECT_THROW(ht::core::bisect_bicriteria(h, options), std::logic_error);
}

}  // namespace
