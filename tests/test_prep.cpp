// Tests for the staged preprocessing pipeline (src/prep/): kernelization
// rules, the cut sparsifier, the composed Lifting, determinism across
// thread counts, anytime stops, and the end-to-end original-id contract
// through snapshot builds and TreeServer queries.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "flow/hypergraph_gomory_hu.hpp"
#include "ht/hypertree.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/hypergraph.hpp"
#include "prep/prep.hpp"
#include "serve/snapshot_build.hpp"
#include "serve/tree_server.hpp"
#include "util/rng.hpp"
#include "util/run_context.hpp"
#include "util/thread_pool.hpp"

namespace {

using ht::hypergraph::Hypergraph;

double global_min_cut(const Hypergraph& h) {
  const auto gh = ht::flow::hypergraph_gomory_hu_run(h);
  double best = -1.0;
  for (std::int32_t v = 0; v < h.num_vertices(); ++v) {
    if (v == gh.tree.root) continue;
    const double cut = gh.tree.parent_cut[static_cast<std::size_t>(v)];
    if (best < 0.0 || cut < best) best = cut;
  }
  return best;
}

Hypergraph triangle_with_extras() {
  Hypergraph h(4);
  h.add_edge({0, 1}, 1.0);
  h.add_edge({1, 2}, 1.0);
  h.add_edge({2, 0}, 1.0);
  h.add_edge({2, 3}, 1.0);
  h.finalize();
  return h;
}

TEST(PrepKernelize, DropsZeroWeightEdges) {
  Hypergraph h(4);
  h.add_edge({0, 1}, 1.0);
  h.add_edge({1, 2}, 0.0);  // must vanish
  h.add_edge({2, 3}, 1.0);
  h.add_edge({0, 3}, 1.0);
  h.finalize();
  ht::prep::PrepConfig config;
  config.mode = ht::prep::PrepConfig::Mode::kExactOnly;
  config.kernelize.heavy_contraction = false;
  const auto result = ht::prep::run_pipeline(h, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stage_flags & ht::prep::kStageZeroEdges);
  EXPECT_EQ(result->reduced.num_edges(), 3);
  for (std::int32_t e = 0; e < result->reduced.num_edges(); ++e) {
    EXPECT_GT(result->reduced.edge_weight(e), 0.0);
  }
  EXPECT_TRUE(result->cut_preserving());
}

TEST(PrepKernelize, MergesDuplicateEdgesSummingWeights) {
  Hypergraph h(4);
  h.add_edge({0, 1, 2}, 1.0);
  h.add_edge({2, 1, 0}, 2.5);  // same pin set, different order
  h.add_edge({1, 3}, 1.0);
  h.add_edge({0, 3}, 1.0);
  h.finalize();
  ht::prep::PrepConfig config;
  config.mode = ht::prep::PrepConfig::Mode::kExactOnly;
  config.kernelize.heavy_contraction = false;
  const auto result = ht::prep::run_pipeline(h, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stage_flags & ht::prep::kStageDuplicateMerge);
  EXPECT_EQ(result->reduced.num_vertices(), 4);
  EXPECT_EQ(result->reduced.num_edges(), 3);
  // The merged {0,1,2} edge carries the summed weight.
  bool found = false;
  for (std::int32_t e = 0; e < result->reduced.num_edges(); ++e) {
    if (result->reduced.pins(e).size() == 3) {
      found = true;
      EXPECT_DOUBLE_EQ(result->reduced.edge_weight(e), 3.5);
    }
  }
  EXPECT_TRUE(found);
  // Duplicate merging preserves every cut value, not just the minimum.
  EXPECT_TRUE(result->cut_preserving());
  EXPECT_DOUBLE_EQ(global_min_cut(result->reduced), global_min_cut(h));
}

TEST(PrepKernelize, ContractsHeavyEdgesAboveMinDegreeBound) {
  // lambda_hat = min weighted degree = 2 (vertices 0 and 3); the weight-5
  // edge {1, 2} exceeds it, so 1 and 2 contract; min cut value survives.
  Hypergraph h(4);
  h.add_edge({0, 1}, 1.0);
  h.add_edge({0, 2}, 1.0);
  h.add_edge({1, 2}, 5.0);
  h.add_edge({1, 3}, 1.0);
  h.add_edge({2, 3}, 1.0);
  h.finalize();
  const double before = global_min_cut(h);
  ht::prep::PrepConfig config;
  config.mode = ht::prep::PrepConfig::Mode::kExactOnly;
  const auto result = ht::prep::run_pipeline(h, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stage_flags & ht::prep::kStageHeavyContraction);
  EXPECT_LT(result->reduced.num_vertices(), 4);
  EXPECT_TRUE(result->exact());
  EXPECT_FALSE(result->cut_preserving());
  EXPECT_DOUBLE_EQ(global_min_cut(result->reduced), before);
  // 1 and 2 share a cluster; 0 and 3 keep their own.
  const auto& lift = result->lifting;
  EXPECT_EQ(lift.to_reduced(1), lift.to_reduced(2));
  EXPECT_NE(lift.to_reduced(0), lift.to_reduced(1));
  EXPECT_NE(lift.to_reduced(3), lift.to_reduced(1));
}

TEST(PrepPipeline, OffModeIsIdentity) {
  const Hypergraph h = triangle_with_extras();
  const auto result = ht::prep::run_pipeline(h, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->applied());
  EXPECT_TRUE(result->lifting.is_identity());
  EXPECT_EQ(result->reduced.num_vertices(), h.num_vertices());
  EXPECT_EQ(result->reduced.num_edges(), h.num_edges());
  EXPECT_DOUBLE_EQ(result->reduction_ratio(), 1.0);
}

TEST(PrepPipeline, ExactModePreservesGlobalMinCutOnCorpus) {
  std::vector<Hypergraph> corpus;
  {
    ht::Rng rng(31);
    corpus.push_back(ht::hypergraph::netlist_like(60, 120, 2, rng));
  }
  {
    ht::Rng rng(32);
    corpus.push_back(ht::hypergraph::planted_parts(4, 12, 3, 40, 12, rng));
  }
  {
    ht::Rng rng(33);
    corpus.push_back(ht::hypergraph::random_uniform(40, 160, 3, rng));
  }
  {
    ht::Rng rng(34);
    corpus.push_back(ht::hypergraph::planted_bisection(24, 3, 60, 8, rng));
  }
  {
    ht::Rng rng(35);
    corpus.push_back(ht::hypergraph::spmv_row_net(48, 96, 3, 0.05, rng));
  }
  ht::prep::PrepConfig config;
  config.mode = ht::prep::PrepConfig::Mode::kExactOnly;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Hypergraph& h = corpus[i];
    const auto result = ht::prep::run_pipeline(h, config);
    ASSERT_TRUE(result.ok()) << "instance " << i;
    EXPECT_TRUE(result->exact()) << "instance " << i;
    EXPECT_DOUBLE_EQ(global_min_cut(result->reduced), global_min_cut(h))
        << "instance " << i;
  }
}

TEST(PrepPipeline, AggressiveModeShrinksPlantedCommunities) {
  ht::Rng rng(41);
  const auto h = ht::hypergraph::planted_parts(6, 20, 3, 80, 20, rng);
  ht::prep::PrepConfig config;
  config.mode = ht::prep::PrepConfig::Mode::kAggressive;
  const auto result = ht::prep::run_pipeline(h, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applied());
  EXPECT_LT(result->reduced.num_vertices(), h.num_vertices());
  EXPECT_GT(result->reduction_ratio(), 1.5);
  // Lifting is total and onto the reduced vertex set.
  EXPECT_EQ(result->lifting.num_original(), h.num_vertices());
  EXPECT_EQ(result->lifting.num_reduced(), result->reduced.num_vertices());
  std::vector<bool> hit(
      static_cast<std::size_t>(result->reduced.num_vertices()), false);
  for (std::int32_t v = 0; v < h.num_vertices(); ++v) {
    const auto r = result->lifting.to_reduced(v);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, result->reduced.num_vertices());
    hit[static_cast<std::size_t>(r)] = true;
  }
  for (const bool b : hit) EXPECT_TRUE(b);
}

TEST(PrepSparsify, DeterministicForFixedSeedAndKeyedOnSeed) {
  ht::Rng rng(51);
  const auto h = ht::hypergraph::random_uniform(48, 400, 3, rng);
  // Large epsilon so p_e = rho * w_e / strength_e dips below 1 on this
  // dense instance and sampling actually drops edges.
  const auto stage = ht::prep::make_sparsify_stage({1.5, 1.0, 123});
  ht::prep::StageResult a, b;
  ASSERT_TRUE(stage->apply(h, a).ok());
  ASSERT_TRUE(stage->apply(h, b).ok());
  ASSERT_EQ(a.changed, b.changed);
  ASSERT_TRUE(a.changed);
  ASSERT_EQ(a.reduced.num_edges(), b.reduced.num_edges());
  for (std::int32_t e = 0; e < a.reduced.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(a.reduced.edge_weight(e), b.reduced.edge_weight(e));
  }
  EXPECT_FALSE(stage->exact());
  // Vertex set is untouched — the sparsifier only drops / reweights edges.
  EXPECT_EQ(a.reduced.num_vertices(), h.num_vertices());
  EXPECT_TRUE(a.map.is_identity());
}

TEST(PrepLifting, ComposesStageMaps) {
  auto lift = ht::prep::Lifting::identity(6);
  // Stage 1: pair up {0,1}, {2,3}, {4,5}.
  ht::prep::ContractionMap first;
  first.cluster_of = {0, 0, 1, 1, 2, 2};
  first.num_clusters = 3;
  lift.compose(first);
  // Stage 2: merge clusters 0 and 2.
  ht::prep::ContractionMap second;
  second.cluster_of = {0, 1, 0};
  second.num_clusters = 2;
  lift.compose(second);
  EXPECT_EQ(lift.num_original(), 6);
  EXPECT_EQ(lift.num_reduced(), 2);
  const std::vector<std::int32_t> expect = {0, 0, 1, 1, 0, 0};
  for (std::int32_t v = 0; v < 6; ++v) {
    EXPECT_EQ(lift.to_reduced(v), expect[static_cast<std::size_t>(v)]) << v;
  }
  const auto side = lift.lift_side({true, false});
  const std::vector<bool> expect_side = {true, true, false, false, true, true};
  EXPECT_EQ(side, expect_side);
  const auto part = lift.lift_partition({7, 9});
  const std::vector<std::int32_t> expect_part = {7, 7, 9, 9, 7, 7};
  EXPECT_EQ(part, expect_part);
}

TEST(PrepPipeline, PieceBudgetStopsBetweenStagesWithValidResult) {
  ht::Rng rng(61);
  const auto h = ht::hypergraph::planted_parts(6, 20, 3, 80, 20, rng);
  ht::prep::PrepConfig config;
  config.mode = ht::prep::PrepConfig::Mode::kAggressive;
  ht::RunContext ctx;
  ctx.with_piece_budget(1);  // stop after the first applied stage
  ht::RunScope scope(ctx);
  const auto result = ht::prep::run_pipeline(h, config);
  EXPECT_EQ(result.status().code(), ht::StatusCode::kResourceExhausted);
  ASSERT_TRUE(result.has_value());
  // Anytime: whatever was applied is still a consistent reduction.
  EXPECT_EQ(result->lifting.num_original(), h.num_vertices());
  EXPECT_EQ(result->lifting.num_reduced(), result->reduced.num_vertices());
  EXPECT_GE(result->reduced.num_vertices(), 2);
}

TEST(PrepPipeline, RejectsUnfinalizedInput) {
  Hypergraph h(4);
  h.add_edge({0, 1}, 1.0);
  ht::prep::PrepConfig config;
  config.mode = ht::prep::PrepConfig::Mode::kExactOnly;
  const auto result = ht::prep::run_pipeline(h, config);
  EXPECT_EQ(result.status().code(), ht::StatusCode::kInvalidArgument);
}

TEST(PrepSnapshot, BuildBytesIdenticalAcrossThreadCounts) {
  ht::Rng rng(71);
  const auto h = ht::hypergraph::planted_parts(4, 16, 3, 60, 16, rng);
  ht::snapshot::BuildOptions options;
  options.prep.mode = ht::prep::PrepConfig::Mode::kAggressive;
  ht::ThreadPool::reset_global(1);
  const auto one = ht::snapshot::build(h, options);
  ht::ThreadPool::reset_global(4);
  const auto four = ht::snapshot::build(h, options);
  ht::ThreadPool::reset_global();
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  EXPECT_EQ(*one, *four);
}

class PrepServeTest : public ::testing::Test {
 protected:
  static Hypergraph instance() {
    ht::Rng rng(81);
    return ht::hypergraph::planted_parts(4, 16, 3, 60, 16, rng);
  }

  static ht::TreeServer open_with_mode(const Hypergraph& h,
                                       ht::prep::PrepConfig::Mode mode,
                                       ht::snapshot::BuildReport* report) {
    ht::snapshot::BuildOptions options;
    options.prep.mode = mode;
    const std::string path =
        "test_prep_serve_" +
        std::string(ht::prep::mode_name(mode)) + ".htsnap";
    EXPECT_TRUE(ht::snapshot::write(h, path, options, report).ok());
    auto server = ht::TreeServer::open(path);
    std::remove(path.c_str());
    EXPECT_TRUE(server.has_value());
    return *server;
  }
};

TEST_F(PrepServeTest, InfoReportsOriginalAndStoredCounts) {
  const Hypergraph h = instance();
  ht::snapshot::BuildReport report;
  auto server = open_with_mode(h, ht::prep::PrepConfig::Mode::kAggressive,
                               &report);
  ASSERT_TRUE(report.prep_applied);
  const auto info = server.info();
  EXPECT_EQ(info.num_vertices, h.num_vertices());
  EXPECT_EQ(info.num_edges, h.num_edges());
  EXPECT_EQ(info.stored_vertices, report.stored_vertices);
  EXPECT_EQ(info.stored_edges, report.stored_edges);
  EXPECT_LT(info.stored_vertices, info.num_vertices);
  EXPECT_TRUE(info.preprocessed);
  EXPECT_FALSE(info.prep_exact);  // aggressive mode ran lossy stages
  EXPECT_EQ(info.prep_stage_flags, report.prep_stage_flags);
}

TEST_F(PrepServeTest, MinCutAnswersInOriginalIdsAndRejectsMergedPairs) {
  const Hypergraph h = instance();
  ht::snapshot::BuildReport report;
  auto server = open_with_mode(h, ht::prep::PrepConfig::Mode::kAggressive,
                               &report);
  ASSERT_TRUE(report.prep_applied);
  const auto state = server.state();
  ASSERT_TRUE(state->has_prep);
  // Find a merged pair and a surviving pair in original ids.
  std::int32_t merged_a = -1, merged_b = -1, split_a = -1, split_b = -1;
  for (std::int32_t u = 0; u < h.num_vertices() && split_b < 0; ++u) {
    for (std::int32_t v = u + 1; v < h.num_vertices(); ++v) {
      const bool same = state->to_stored(u) == state->to_stored(v);
      if (same && merged_a < 0) {
        merged_a = u;
        merged_b = v;
      } else if (!same && split_a < 0) {
        split_a = u;
        split_b = v;
      }
      if (merged_a >= 0 && split_a >= 0) break;
    }
  }
  ASSERT_GE(merged_a, 0) << "aggressive prep merged nothing";
  ASSERT_GE(split_a, 0);
  const auto merged = server.min_cut(merged_a, merged_b);
  EXPECT_EQ(merged.status().code(), ht::StatusCode::kInvalidArgument);
  const auto split = server.min_cut(split_a, split_b);
  ASSERT_TRUE(split.has_value());
  EXPECT_GT(split->value, 0.0);
  EXPECT_FALSE(split->exact);  // lossy prep demotes min-cut answers
  // Out-of-range original ids are rejected against the ORIGINAL count.
  EXPECT_EQ(server.min_cut(0, h.num_vertices()).status().code(),
            ht::StatusCode::kInvalidArgument);
}

TEST_F(PrepServeTest, ExactOnlyPrepKeepsMinCutValuesExact) {
  // A corpus with genuine kernelization: duplicated edges merge, so the
  // stored instance is smaller but every s-t cut value is preserved.
  Hypergraph base(8);
  for (int copy = 0; copy < 3; ++copy) {
    base.add_edge({0, 1, 2}, 1.0);
    base.add_edge({2, 3}, 1.0);
    base.add_edge({3, 4, 5}, 1.0);
    base.add_edge({5, 6}, 1.0);
    base.add_edge({6, 7}, 1.0);
    base.add_edge({7, 0}, 1.0);
  }
  base.finalize();
  ht::snapshot::BuildReport report;
  auto server = open_with_mode(base, ht::prep::PrepConfig::Mode::kExactOnly,
                               &report);
  ASSERT_TRUE(report.prep_applied);
  ASSERT_TRUE(report.prep_exact);
  ht::snapshot::BuildReport off_report;
  auto off = open_with_mode(base, ht::prep::PrepConfig::Mode::kOff,
                            &off_report);
  for (std::int32_t s = 0; s < base.num_vertices(); ++s) {
    for (std::int32_t t = s + 1; t < base.num_vertices(); ++t) {
      const auto with_prep = server.min_cut(s, t);
      const auto without = off.min_cut(s, t);
      if (!with_prep.has_value()) continue;  // merged pair (none expected)
      ASSERT_TRUE(without.has_value());
      EXPECT_DOUBLE_EQ(with_prep->value, without->value) << s << "," << t;
    }
  }
}

TEST_F(PrepServeTest, BisectionBalancesOriginalVertices) {
  const Hypergraph h = instance();
  ht::snapshot::BuildReport report;
  auto server = open_with_mode(h, ht::prep::PrepConfig::Mode::kAggressive,
                               &report);
  ASSERT_TRUE(report.prep_applied);
  const auto answer = server.bisection();
  ASSERT_TRUE(answer.has_value());
  ASSERT_EQ(static_cast<std::int32_t>(answer->side.size()),
            h.num_vertices());
  std::int32_t ones = 0;
  for (const bool s : answer->side) ones += s ? 1 : 0;
  EXPECT_EQ(ones, h.num_vertices() / 2);
  EXPECT_GT(answer->cut, 0.0);
}

TEST_F(PrepServeTest, KwayPartitionsOriginalVertices) {
  const Hypergraph h = instance();
  ht::snapshot::BuildReport report;
  auto server = open_with_mode(h, ht::prep::PrepConfig::Mode::kAggressive,
                               &report);
  const auto answer = server.kway(4);
  ASSERT_TRUE(answer.has_value());
  ASSERT_EQ(static_cast<std::int32_t>(answer->part.size()),
            h.num_vertices());
  std::vector<std::int32_t> sizes(4, 0);
  for (const std::int32_t p : answer->part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
    ++sizes[static_cast<std::size_t>(p)];
  }
  for (const std::int32_t s : sizes) EXPECT_EQ(s, h.num_vertices() / 4);
}

TEST_F(PrepServeTest, SetCutAnswersAndRejectsNodeCollisions) {
  const Hypergraph h = instance();
  ht::snapshot::BuildReport report;
  auto server = open_with_mode(h, ht::prep::PrepConfig::Mode::kAggressive,
                               &report);
  ASSERT_TRUE(report.prep_applied);
  const auto state = server.state();
  // A merged pair split across sides must be a Status, not a crash.
  std::int32_t merged_a = -1, merged_b = -1;
  for (std::int32_t u = 0; u < h.num_vertices() && merged_a < 0; ++u) {
    for (std::int32_t v = u + 1; v < h.num_vertices(); ++v) {
      if (state->to_stored(u) == state->to_stored(v)) {
        merged_a = u;
        merged_b = v;
        break;
      }
    }
  }
  ASSERT_GE(merged_a, 0);
  const auto collided = server.set_cut({merged_a}, {merged_b});
  EXPECT_EQ(collided.status().code(), ht::StatusCode::kInvalidArgument);
  // A pair on distinct stored vertices answers with a dominating value.
  std::int32_t other = -1;
  for (std::int32_t v = 0; v < h.num_vertices(); ++v) {
    if (state->to_stored(v) != state->to_stored(merged_a)) {
      other = v;
      break;
    }
  }
  ASSERT_GE(other, 0);
  const auto answer = server.set_cut({merged_a}, {other});
  ASSERT_TRUE(answer.has_value());
  EXPECT_GT(answer->value, 0.0);
}

TEST(PrepSolver, FacadePreprocessAppliesContextSeed) {
  ht::Rng rng(91);
  const auto h = ht::hypergraph::random_uniform(48, 400, 3, rng);
  ht::RunContext ctx;
  ctx.with_seed(123);
  ht::Solver solver(ctx);
  ht::prep::PrepConfig config;
  config.mode = ht::prep::PrepConfig::Mode::kAggressive;
  const auto a = solver.preprocess(h, config);
  const auto b = solver.preprocess(h, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->reduced.num_edges(), b->reduced.num_edges());
  EXPECT_EQ(a->stage_flags, b->stage_flags);
}

}  // namespace
