// Equivalence of the zero-rebuild flow engine and subgraph views with the
// build-per-call / copy-per-level paths they replaced.
//
// Two layers of evidence:
//  * Direct A/B: every min-cut primitive is run with the engine cache on
//    (reset-and-reuse) and off (FlowReuseScope — fresh build per call, the
//    pre-refactor behaviour) and must agree exactly, bit for bit.
//  * Golden hashes: tree signatures / Gomory–Hu trees / Theorem 1 outputs
//    captured from the pre-refactor seed build. The refactor must not move
//    a single byte of output.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/bisection.hpp"
#include "cuttree/decomposition_tree.hpp"
#include "cuttree/tree.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/dinic.hpp"
#include "flow/flow_network.hpp"
#include "flow/gomory_hu.hpp"
#include "flow/hypergraph_gomory_hu.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "graph/subset_view.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/subset_view.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/work_arena.hpp"

namespace {

using ht::flow::FlowNetwork;
using ht::flow::FlowReuseScope;

// FNV-1a 64-bit over a string, printed as hex — the same digest the
// pre-refactor goldens below were captured with.
std::string hash_hex(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string gomory_hu_string(const std::vector<std::int32_t>& parent,
                             const std::vector<double>& parent_cut) {
  std::string s;
  for (auto p : parent) s += std::to_string(p) + ",";
  for (auto c : parent_cut) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g,", c);
    s += buf;
  }
  return s;
}

std::vector<ht::graph::VertexId> random_terminals(ht::Rng& rng,
                                                  std::int32_t n,
                                                  std::vector<char>& taken) {
  std::vector<ht::graph::VertexId> out;
  const auto want = 1 + static_cast<std::int32_t>(rng.next_below(3));
  for (std::int32_t tries = 0;
       static_cast<std::int32_t>(out.size()) < want && tries < 8 * n;
       ++tries) {
    const auto v =
        static_cast<ht::graph::VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (taken[static_cast<std::size_t>(v)]) continue;
    taken[static_cast<std::size_t>(v)] = 1;
    out.push_back(v);
  }
  return out;
}

TEST(FlowEngine, EdgeCutReuseMatchesFreshBuild) {
  ht::Rng rng(51);
  for (int round = 0; round < 12; ++round) {
    const auto n = static_cast<std::int32_t>(20 + rng.next_below(30));
    const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    for (int q = 0; q < 6; ++q) {
      std::vector<char> taken(static_cast<std::size_t>(n), 0);
      const auto a = random_terminals(rng, n, taken);
      const auto b = random_terminals(rng, n, taken);
      if (a.empty() || b.empty()) continue;
      const auto reused = ht::flow::min_edge_cut(g, a, b);
      FlowReuseScope off(false);
      const auto fresh = ht::flow::min_edge_cut(g, a, b);
      EXPECT_EQ(reused.value, fresh.value);
      EXPECT_EQ(reused.cut_edges, fresh.cut_edges);
      EXPECT_EQ(reused.source_side, fresh.source_side);
    }
  }
}

TEST(FlowEngine, VertexCutReuseMatchesFreshBuild) {
  ht::Rng rng(52);
  for (int round = 0; round < 12; ++round) {
    const auto n = static_cast<std::int32_t>(20 + rng.next_below(30));
    const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    for (int q = 0; q < 6; ++q) {
      std::vector<char> taken(static_cast<std::size_t>(n), 0);
      const auto a = random_terminals(rng, n, taken);
      const auto b = random_terminals(rng, n, taken);
      if (a.empty() || b.empty()) continue;
      const auto reused = ht::flow::min_vertex_cut(g, a, b);
      FlowReuseScope off(false);
      const auto fresh = ht::flow::min_vertex_cut(g, a, b);
      EXPECT_EQ(reused.value, fresh.value);
      EXPECT_EQ(reused.cut_vertices, fresh.cut_vertices);
    }
  }
}

TEST(FlowEngine, HyperedgeCutReuseMatchesFreshBuild) {
  ht::Rng rng(53);
  for (int round = 0; round < 10; ++round) {
    const auto n = static_cast<std::int32_t>(16 + rng.next_below(20));
    const auto h = ht::hypergraph::random_uniform(n, 2 * n, 3, rng);
    for (int q = 0; q < 6; ++q) {
      std::vector<char> taken(static_cast<std::size_t>(n), 0);
      const auto a = random_terminals(rng, n, taken);
      const auto b = random_terminals(rng, n, taken);
      if (a.empty() || b.empty()) continue;
      const auto reused = ht::flow::min_hyperedge_cut(h, a, b);
      FlowReuseScope off(false);
      const auto fresh = ht::flow::min_hyperedge_cut(h, a, b);
      EXPECT_EQ(reused.value, fresh.value);
      EXPECT_EQ(reused.cut_edges, fresh.cut_edges);
    }
  }
}

TEST(FlowEngine, RepeatedQueriesAreIdentical) {
  // reset() restores the exact build-time capacities, so asking the same
  // question twice on one engine must answer bit-identically.
  ht::Rng rng(54);
  const auto g = ht::graph::gnp_connected(40, 5.0 / 40, rng);
  const std::vector<ht::graph::VertexId> a{0, 3}, b{11, 17};
  const auto first = ht::flow::min_edge_cut(g, a, b);
  const auto second = ht::flow::min_edge_cut(g, a, b);
  EXPECT_EQ(first.value, second.value);
  EXPECT_EQ(first.cut_edges, second.cut_edges);
  EXPECT_EQ(first.source_side, second.source_side);
}

TEST(FlowEngine, ReuseCountersShowReuse) {
  ht::ThreadPool::reset_global(1);
  ht::Rng rng(55);
  const auto g = ht::graph::gnp_connected(48, 6.0 / 48, rng);
  auto& counters = ht::PerfCounters::global();
  counters.reset();
  const auto tree = ht::flow::gomory_hu(g);
  ht::ThreadPool::reset_global();
  EXPECT_EQ(tree.parent.size(), 48u);
  // Gusfield issues n-1 flows on the same graph: a handful of engine
  // builds (one per participating thread), everything else reuse.
  EXPECT_GT(counters.max_flow_calls(), 0u);
  EXPECT_GT(counters.flow_reuses(), 0u);
  EXPECT_GT(counters.arena_hits(), 0u);
  EXPECT_LT(counters.flow_builds(), counters.max_flow_calls());
  EXPECT_GT(counters.peak_arena_bytes(), 0u);
}

TEST(FlowEngine, PushRelabelAgreesWithDinicOnArena) {
  ht::Rng rng(56);
  for (int round = 0; round < 8; ++round) {
    const auto n = static_cast<std::int32_t>(12 + rng.next_below(24));
    const auto g = ht::graph::gnp_connected(n, 5.0 / n, rng);
    FlowNetwork net = FlowNetwork::edge_cut_network(g);
    const auto s =
        static_cast<ht::graph::VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    auto t = static_cast<ht::graph::VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (t == s) t = (t + 1) % n;
    net.reset();
    net.attach_source(s);
    net.attach_sink(t);
    const double dinic_flow = net.max_flow();
    net.reset();
    net.attach_source(s);
    net.attach_sink(t);
    const double pr_flow = net.max_flow_push_relabel();
    EXPECT_NEAR(dinic_flow, pr_flow, 1e-6);
    // Cross-check against the standalone Dinic on the same instance.
    ht::flow::Dinic<double> ref(n + 2);
    for (const auto& e : g.edges()) ref.add_undirected(e.u, e.v, e.weight);
    ref.add_arc(n, s, ht::flow::kInfiniteCapacity);
    ref.add_arc(t, n + 1, ht::flow::kInfiniteCapacity);
    EXPECT_NEAR(dinic_flow, ref.max_flow(n, n + 1), 1e-6);
  }
}

TEST(SubsetView, GraphMaterializeMatchesInducedSubgraph) {
  ht::Rng rng(57);
  for (int round = 0; round < 10; ++round) {
    const auto n = static_cast<std::int32_t>(15 + rng.next_below(30));
    const auto g = ht::graph::gnp_connected(n, 4.0 / n, rng);
    std::vector<ht::graph::VertexId> subset;
    for (ht::graph::VertexId v = 0; v < n; ++v)
      if (rng.next_below(3) != 0) subset.push_back(v);
    if (subset.empty()) continue;
    const ht::graph::SubsetView view(g, subset);
    const auto a = view.materialize();
    const auto b = ht::graph::induced_subgraph(g, subset);
    ASSERT_EQ(a.old_of_new, b.old_of_new);
    ASSERT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
    ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
    for (ht::graph::EdgeId e = 0; e < a.graph.num_edges(); ++e) {
      EXPECT_EQ(a.graph.edge(e).u, b.graph.edge(e).u);
      EXPECT_EQ(a.graph.edge(e).v, b.graph.edge(e).v);
      EXPECT_EQ(a.graph.edge(e).weight, b.graph.edge(e).weight);
    }
    for (ht::graph::VertexId v = 0; v < a.graph.num_vertices(); ++v)
      EXPECT_EQ(a.graph.vertex_weight(v), b.graph.vertex_weight(v));
    // Round-trip id maps agree with the copies.
    for (std::size_t i = 0; i < subset.size(); ++i)
      EXPECT_EQ(view.old_of(static_cast<ht::graph::VertexId>(i)), subset[i]);
  }
}

TEST(SubsetView, HypergraphMaterializeMatchesInducedSubhypergraph) {
  ht::Rng rng(58);
  for (int round = 0; round < 10; ++round) {
    const auto n = static_cast<std::int32_t>(15 + rng.next_below(25));
    const auto h = ht::hypergraph::random_uniform(n, 2 * n, 3, rng);
    std::vector<ht::hypergraph::VertexId> subset;
    for (ht::hypergraph::VertexId v = 0; v < n; ++v)
      if (rng.next_below(3) != 0) subset.push_back(v);
    if (subset.empty()) continue;
    const ht::hypergraph::SubsetView view(h, subset);
    const auto a = view.materialize();
    const auto b = ht::hypergraph::induced_subhypergraph(h, subset);
    ASSERT_EQ(a.old_of_new, b.old_of_new);
    ASSERT_EQ(a.hypergraph.num_vertices(), b.hypergraph.num_vertices());
    ASSERT_EQ(a.hypergraph.num_edges(), b.hypergraph.num_edges());
    for (ht::hypergraph::EdgeId e = 0; e < a.hypergraph.num_edges(); ++e) {
      EXPECT_EQ(a.hypergraph.edge_weight(e), b.hypergraph.edge_weight(e));
      ASSERT_EQ(a.hypergraph.edge_size(e), b.hypergraph.edge_size(e));
      for (std::int32_t i = 0; i < a.hypergraph.edge_size(e); ++i)
        EXPECT_EQ(a.hypergraph.pins(e)[static_cast<std::size_t>(i)],
                  b.hypergraph.pins(e)[static_cast<std::size_t>(i)]);
    }
    for (ht::hypergraph::VertexId v = 0; v < a.hypergraph.num_vertices(); ++v)
      EXPECT_EQ(a.hypergraph.vertex_weight(v),
                b.hypergraph.vertex_weight(v));
  }
}

TEST(SubsetView, LocalOfIsInverseOfOldOf) {
  ht::Rng rng(59);
  const auto g = ht::graph::gnp_connected(30, 4.0 / 30, rng);
  std::vector<ht::graph::VertexId> subset{2, 5, 7, 11, 23, 29};
  const ht::graph::SubsetView view(g, subset);
  for (std::size_t i = 0; i < subset.size(); ++i)
    EXPECT_EQ(view.local_of(subset[i]),
              static_cast<ht::graph::VertexId>(i));
  EXPECT_EQ(view.local_of(0), -1);
  EXPECT_FALSE(view.contains(1));
  EXPECT_TRUE(view.contains(23));
}

// --- goldens captured from the pre-refactor seed build -------------------
// A failure here means the refactor changed an output byte; the arena /
// view paths are required to be observationally identical.

TEST(FlowEngineGolden, DecompositionTreeUnchanged) {
  ht::Rng rng(4242);
  const auto g = ht::graph::gnp_connected(80, 5.0 / 80, rng);
  const auto t = ht::cuttree::build_decomposition_tree(g);
  EXPECT_EQ(hash_hex(ht::cuttree::tree_signature(t)), "9267f129397d94b9");
}

TEST(FlowEngineGolden, VertexCutTreeUnchanged) {
  ht::Rng rng(2024);
  const auto g = ht::graph::gnp_connected(60, 5.0 / 60, rng);
  const auto r = ht::cuttree::build_vertex_cut_tree(g);
  EXPECT_EQ(hash_hex(ht::cuttree::tree_signature(r.tree)),
            "794ee03a599a44d6");
  EXPECT_EQ(r.separator_weight, 0.0);
}

TEST(FlowEngineGolden, VertexCutTreeDeepRecursionUnchanged) {
  // threshold_override high enough to force splits all the way down — the
  // path that exercises SubsetView + the vertex-cut flow arena hardest.
  ht::Rng rng(2024);
  const auto g = ht::graph::gnp_connected(60, 5.0 / 60, rng);
  ht::cuttree::VertexCutTreeOptions opt;
  opt.threshold_override = 0.75;
  const auto r = ht::cuttree::build_vertex_cut_tree(g, opt);
  EXPECT_EQ(hash_hex(ht::cuttree::tree_signature(r.tree)),
            "eadb86157db492ca");
  EXPECT_EQ(r.separator_weight, 33.0);
  EXPECT_EQ(r.num_pieces, 22);
}

TEST(FlowEngineGolden, VertexCutTreeGridUnchanged) {
  const auto g = ht::graph::grid(10, 10);
  const auto r = ht::cuttree::build_vertex_cut_tree(g);
  EXPECT_EQ(hash_hex(ht::cuttree::tree_signature(r.tree)),
            "d1862126fa304004");
}

TEST(FlowEngineGolden, GomoryHuUnchanged) {
  ht::Rng rng(1313);
  const auto g = ht::graph::gnp_connected(60, 6.0 / 60, rng);
  const auto t = ht::flow::gomory_hu(g);
  EXPECT_EQ(hash_hex(gomory_hu_string(t.parent, t.parent_cut)),
            "7d301c7c0431f7f7");
}

TEST(FlowEngineGolden, HypergraphGomoryHuUnchanged) {
  ht::Rng rng(99);
  const auto h = ht::hypergraph::random_uniform(36, 70, 3, rng);
  const auto t = ht::flow::hypergraph_gomory_hu(h);
  EXPECT_EQ(hash_hex(gomory_hu_string(t.parent, t.parent_cut)),
            "89aacea13cfa79eb");
}

TEST(FlowEngineGolden, Theorem1BisectionUnchanged) {
  ht::Rng rng(777);
  const auto h = ht::hypergraph::random_uniform(40, 80, 3, rng);
  const auto rep = ht::core::bisect_theorem1(h);
  std::string s;
  for (bool b : rep.solution.side) s += b ? '1' : '0';
  EXPECT_EQ(rep.solution.cut, 37.0);
  EXPECT_EQ(hash_hex(s), "75cceafb461218bb");
}

TEST(FlowEngineGolden, GoldensHoldWithReuseDisabled) {
  // The fresh-build path must produce the same bytes as the arena path.
  FlowReuseScope off(false);
  {
    ht::Rng rng(1313);
    const auto g = ht::graph::gnp_connected(60, 6.0 / 60, rng);
    const auto t = ht::flow::gomory_hu(g);
    EXPECT_EQ(hash_hex(gomory_hu_string(t.parent, t.parent_cut)),
              "7d301c7c0431f7f7");
  }
  {
    ht::Rng rng(2024);
    const auto g = ht::graph::gnp_connected(60, 5.0 / 60, rng);
    ht::cuttree::VertexCutTreeOptions opt;
    opt.threshold_override = 0.75;
    const auto r = ht::cuttree::build_vertex_cut_tree(g, opt);
    EXPECT_EQ(hash_hex(ht::cuttree::tree_signature(r.tree)),
              "eadb86157db492ca");
  }
}


TEST(SubsetView, EmptySubsetsAreValidAndMaterializeEmpty) {
  ht::Rng rng(7);
  const auto g = ht::graph::gnp_connected(12, 0.4, rng);
  {
    const ht::graph::SubsetView view(g, {});
    EXPECT_EQ(view.size(), 0);
    EXPECT_FALSE(view.contains(0));
    EXPECT_DOUBLE_EQ(view.total_vertex_weight(), 0.0);
    const auto sub = view.materialize();
    EXPECT_EQ(sub.graph.num_vertices(), 0);
    EXPECT_TRUE(sub.old_of_new.empty());
  }
  ht::Rng hrng(8);
  const auto h = ht::hypergraph::random_uniform(12, 24, 3, hrng);
  {
    const ht::hypergraph::SubsetView view(h, {});
    EXPECT_EQ(view.size(), 0);
    EXPECT_FALSE(view.contains(0));
    EXPECT_DOUBLE_EQ(view.total_vertex_weight(), 0.0);
    const auto sub = view.materialize();
    EXPECT_EQ(sub.hypergraph.num_vertices(), 0);
    EXPECT_EQ(sub.hypergraph.num_edges(), 0);
  }
}

TEST(SubsetView, SingletonSubsetsKeepTheVertexAndDropAllEdges) {
  ht::Rng rng(9);
  const auto g = ht::graph::gnp_connected(10, 0.5, rng);
  {
    const ht::graph::SubsetView view(g, {4});
    EXPECT_EQ(view.size(), 1);
    EXPECT_EQ(view.old_of(0), 4);
    EXPECT_EQ(view.local_of(4), 0);
    EXPECT_EQ(view.local_of(5), -1);
    EXPECT_DOUBLE_EQ(view.total_vertex_weight(), g.vertex_weight(4));
    const auto sub = view.materialize();
    EXPECT_EQ(sub.graph.num_vertices(), 1);
    EXPECT_EQ(sub.graph.num_edges(), 0);  // no 2-pin edge survives
  }
  ht::Rng hrng(10);
  const auto h = ht::hypergraph::random_uniform(10, 30, 3, hrng);
  {
    const ht::hypergraph::SubsetView view(h, {4});
    EXPECT_EQ(view.size(), 1);
    EXPECT_EQ(view.old_of(0), 4);
    EXPECT_TRUE(view.contains(4));
    EXPECT_FALSE(view.contains(3));
    const auto sub = view.materialize();
    EXPECT_EQ(sub.hypergraph.num_vertices(), 1);
    EXPECT_EQ(sub.hypergraph.num_edges(), 0);  // < 2 surviving pins
  }
}

}  // namespace

