// Degenerate-input and failure-injection coverage across the public API:
// minimal sizes, parallel/zero/huge weights, malformed IO, contract
// corner cases, empty hypergraphs, adversarial parameter values.
#include <gtest/gtest.h>

#include <sstream>

#include "core/bisection.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "flow/gomory_hu.hpp"
#include "flow/min_cut.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/io.hpp"
#include "partition/exact.hpp"
#include "partition/fm.hpp"
#include "partition/min_ratio_cut.hpp"
#include "reduction/clique_expansion.hpp"
#include "reduction/star_expansion.hpp"
#include "util/rng.hpp"

namespace {

using ht::graph::Graph;
using ht::hypergraph::Hypergraph;

// ---------- minimal sizes ----------

TEST(EdgeCases, TwoVertexGraphEverything) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  g.finalize();
  EXPECT_DOUBLE_EQ(ht::flow::min_edge_cut(g, {0}, {1}).value, 5.0);
  EXPECT_DOUBLE_EQ(ht::flow::min_vertex_cut(g, {0}, {1}).value, 1.0);
  const auto tree = ht::flow::gomory_hu(g);
  EXPECT_DOUBLE_EQ(tree.min_cut(0, 1), 5.0);
  const auto built = ht::cuttree::build_vertex_cut_tree(g);
  built.tree.validate();
}

TEST(EdgeCases, TwoVertexHypergraphBisection) {
  Hypergraph h(2);
  h.add_edge({0, 1}, 3.0);
  h.finalize();
  const auto t1 = ht::core::bisect_theorem1(h);
  EXPECT_DOUBLE_EQ(t1.solution.cut, 3.0);  // any bisection cuts the edge
  const auto c3 = ht::core::bisect_via_cut_tree(h);
  EXPECT_DOUBLE_EQ(c3.solution.cut, 3.0);
}

TEST(EdgeCases, SingleVertexGraphTree) {
  Graph g(1);
  g.finalize();
  const auto built = ht::cuttree::build_vertex_cut_tree(g);
  built.tree.validate();
  EXPECT_EQ(built.num_pieces, 1);
}

TEST(EdgeCases, IsolatedVerticesInHypergraph) {
  Hypergraph h(6);
  h.add_edge({0, 1});
  h.finalize();
  EXPECT_EQ(h.degree(5), 0);
  const auto report = ht::core::bisect_theorem1(h);
  ht::partition::validate_bisection(h, report.solution);
  EXPECT_LE(report.solution.cut, 1.0);
}

// ---------- weights ----------

TEST(EdgeCases, ParallelEdgesBehaveAdditively) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 1, 3.0);
  g.finalize();
  EXPECT_DOUBLE_EQ(ht::flow::min_edge_cut(g, {0}, {1}).value, 5.0);
  EXPECT_DOUBLE_EQ(g.cut_weight({true, false}), 5.0);
}

TEST(EdgeCases, ZeroWeightEdgesAreFreeToCut) {
  Graph g(3);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 4.0);
  g.finalize();
  EXPECT_DOUBLE_EQ(ht::flow::min_edge_cut(g, {0}, {2}).value, 0.0);
}

TEST(EdgeCases, ParallelHyperedges) {
  Hypergraph h(3);
  h.add_edge({0, 1, 2}, 1.0);
  h.add_edge({0, 1, 2}, 2.0);
  h.finalize();
  EXPECT_DOUBLE_EQ(h.cut_weight(std::vector<ht::hypergraph::VertexId>{0}),
                   3.0);
  const auto cut = ht::flow::min_hyperedge_cut(h, {0}, {2});
  EXPECT_DOUBLE_EQ(cut.value, 3.0);
}

TEST(EdgeCases, LargeWeightsStayFinite) {
  Graph g(3);
  g.add_edge(0, 1, 1e12);
  g.add_edge(1, 2, 1e12);
  g.finalize();
  EXPECT_DOUBLE_EQ(ht::flow::min_edge_cut(g, {0}, {2}).value, 1e12);
  // Vertex cuts with huge vertex weights.
  g.set_vertex_weight(1, 1e12);
  EXPECT_DOUBLE_EQ(ht::flow::min_vertex_cut(g, {0}, {2}).value, 1.0);
}

TEST(EdgeCases, CliqueExpansionOfTwoPinEdgeIsIdentity) {
  Hypergraph h(2);
  h.add_edge({0, 1}, 7.0);
  h.finalize();
  const Graph g = ht::reduction::clique_expansion(h);
  ASSERT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 7.0);  // 7 / (2-1)
}

TEST(EdgeCases, StarExpansionOfEmptyHypergraph) {
  Hypergraph h(3);
  h.finalize();
  const auto star = ht::reduction::star_expansion(h);
  EXPECT_EQ(star.graph.num_vertices(), 3);
  EXPECT_EQ(star.graph.num_edges(), 0);
  for (ht::graph::VertexId v = 0; v < 3; ++v)
    EXPECT_DOUBLE_EQ(star.graph.vertex_weight(v), 1.0);  // degree 0 + 1
}

// ---------- IO robustness ----------

TEST(EdgeCases, GraphMetisRoundTrip) {
  ht::Rng rng(1);
  Graph g = ht::graph::gnp_connected(10, 0.4, rng);
  g.set_vertex_weight(3, 2.5);
  std::stringstream ss;
  ht::graph::write_metis(g, ss);
  const Graph r = ht::graph::read_metis(ss);
  ASSERT_EQ(r.num_vertices(), g.num_vertices());
  ASSERT_EQ(r.num_edges(), g.num_edges());
  EXPECT_DOUBLE_EQ(r.vertex_weight(3), 2.5);
  // Cut values agree on a sample bipartition.
  std::vector<bool> side(10, false);
  for (int v = 0; v < 5; ++v) side[static_cast<std::size_t>(v)] = true;
  EXPECT_DOUBLE_EQ(r.cut_weight(side), g.cut_weight(side));
}

TEST(EdgeCases, GraphMetisWeightedEdgesRoundTrip) {
  Graph g(3);
  g.add_edge(0, 1, 2.5);
  g.add_edge(1, 2, 4.0);
  g.finalize();
  std::stringstream ss;
  ht::graph::write_metis(g, ss);
  const Graph r = ht::graph::read_metis(ss);
  EXPECT_DOUBLE_EQ(ht::flow::min_edge_cut(r, {0}, {2}).value, 2.5);
}

TEST(EdgeCases, MetisRejectsBadNeighbors) {
  std::stringstream ss("2 1\n5\n1\n");  // neighbor 5 out of range
  EXPECT_THROW(ht::graph::read_metis(ss), std::logic_error);
}

TEST(EdgeCases, MetisRejectsCountMismatch) {
  std::stringstream ss("3 5\n2\n1 3\n2\n");  // header claims 5 edges
  EXPECT_THROW(ht::graph::read_metis(ss), std::logic_error);
}

TEST(EdgeCases, HmetisRejectsTruncatedInput) {
  std::stringstream ss("3 4\n1 2\n");  // promises 3 edges, has 1
  EXPECT_THROW(ht::hypergraph::read_hmetis(ss), std::logic_error);
}

TEST(EdgeCases, HmetisRejectsPinOutOfRange) {
  std::stringstream ss("1 3\n1 9\n");
  EXPECT_THROW(ht::hypergraph::read_hmetis(ss), std::logic_error);
}

// ---------- oracle degenerate inputs ----------

TEST(EdgeCases, MinRatioCutOnCliqueHasNoSeparator) {
  // In a complete graph any two surviving vertices stay adjacent, so NO
  // vertex separator exists; both oracles must report invalid and the
  // cut-tree builder then treats the clique as a final piece.
  const Graph g = ht::graph::clique(8);
  ht::Rng rng(2);
  const auto sep = ht::partition::min_ratio_vertex_cut(g, rng);
  EXPECT_FALSE(sep.valid);
  const auto exact = ht::partition::min_ratio_vertex_cut_exact(g);
  EXPECT_FALSE(exact.valid);
  const auto built = ht::cuttree::build_vertex_cut_tree(g);
  built.tree.validate();
  EXPECT_EQ(built.num_pieces, 1);
  EXPECT_TRUE(built.separator_vertices.empty());
}

TEST(EdgeCases, FmOnCompleteHypergraphAllCutsEqual) {
  const Hypergraph h = ht::hypergraph::single_spanning_edge(6);
  ht::Rng rng(3);
  const auto sol = ht::partition::fm_bisection(h, rng, 2);
  ht::partition::validate_bisection(h, sol);
  EXPECT_DOUBLE_EQ(sol.cut, 1.0);
}

TEST(EdgeCases, ExactBisectionOfSpanningEdge) {
  const Hypergraph h = ht::hypergraph::single_spanning_edge(8, 5.0);
  const auto sol = ht::partition::exact_hypergraph_bisection(h);
  EXPECT_DOUBLE_EQ(sol.cut, 5.0);
}

TEST(EdgeCases, VertexCutTreeOnStarGraph) {
  // Star: removing the centre splits everything; Section 3.1 should find
  // it at a permissive threshold.
  const Graph g = ht::graph::star(12);
  ht::cuttree::VertexCutTreeOptions options;
  options.threshold_override = 0.45;
  const auto built = ht::cuttree::build_vertex_cut_tree(g, options);
  built.tree.validate();
  EXPECT_GE(built.num_pieces, 2);
  ASSERT_EQ(built.separator_vertices.size(), 1u);
  EXPECT_EQ(built.separator_vertices[0], 0);  // the centre
}

TEST(EdgeCases, GomoryHuOnTreeInputIsExactTrivially) {
  const Graph g = ht::graph::path(6);
  const auto tree = ht::flow::gomory_hu(g);
  for (ht::graph::VertexId s = 0; s < 6; ++s)
    for (ht::graph::VertexId t = s + 1; t < 6; ++t)
      EXPECT_DOUBLE_EQ(tree.min_cut(s, t), 1.0);
}

TEST(EdgeCases, Theorem1OnUniformWeightsTiesHandled) {
  // All hyperedges identical weight: guess ladder collapses; still valid.
  Hypergraph h(8);
  for (int i = 0; i < 8; ++i)
    h.add_edge({static_cast<ht::hypergraph::VertexId>(i),
                static_cast<ht::hypergraph::VertexId>((i + 1) % 8)},
               2.0);
  h.finalize();
  const auto report = ht::core::bisect_theorem1(h);
  ht::partition::validate_bisection(h, report.solution);
  EXPECT_DOUBLE_EQ(report.solution.cut, 4.0);  // ring of 8: best cut 2 edges*2
}

}  // namespace
