// The robustness layer: RunContext propagation, anytime stops, and the
// ht::Solver facade.
//
// The contracts pinned here:
//  * stop state is latched — the first failed check wins and never clears;
//  * a piece-budget stop lands on the same logical piece for every thread
//    count, so partial trees are byte-identical across HT_THREADS;
//  * deadline expiry yields a *feasible* best-so-far bisection, never an
//    invalid one, and leaves the arenas reusable for the next run;
//  * the RunContext reaches the flow engine's augmentation loops;
//  * malformed hMetis input comes back as kInvalidArgument, not an abort.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "ht/hypertree.hpp"
#include "util/perf_counters.hpp"
#include "util/thread_pool.hpp"

namespace {

using ht::CancelSource;
using ht::RunContext;
using ht::RunScope;
using ht::Status;
using ht::StatusCode;
using ht::StatusOr;

RunContext expired_context() {
  RunContext ctx;
  ctx.deadline = RunContext::Clock::now() - std::chrono::milliseconds(1);
  return ctx;
}

// A connected hypergraph (chain of overlapping triples) — the flow and
// Gomory–Hu tests need guaranteed connectivity.
ht::hypergraph::Hypergraph chain_hypergraph(ht::hypergraph::VertexId n) {
  ht::hypergraph::Hypergraph h(n);
  for (ht::hypergraph::VertexId v = 0; v + 2 < n; ++v)
    h.add_edge({v, v + 1, v + 2});
  for (ht::hypergraph::VertexId v = 0; v + 5 < n; v += 3)
    h.add_edge({v, v + 3, v + 5});
  h.finalize();
  return h;
}

// ---------- status vocabulary ----------

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().to_string(), "OK");
  const Status d = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(std::string(d.code_name()), "DEADLINE_EXCEEDED");
  EXPECT_EQ(d.to_string(), "DEADLINE_EXCEEDED: too slow");
  // Equality is by code: two deadline statuses with different messages
  // compare equal (tests match on the reason, not the prose).
  EXPECT_EQ(d, Status::DeadlineExceeded());
  EXPECT_NE(d, Status::Cancelled());
}

TEST(Status, StatusOrAnytimeSemantics) {
  // ok() and has_value() are deliberately distinct: a degraded run carries
  // both a stop status and a usable value.
  StatusOr<int> full(42);
  EXPECT_TRUE(full.ok());
  EXPECT_TRUE(full.has_value());
  EXPECT_EQ(*full, 42);

  StatusOr<int> degraded(Status::DeadlineExceeded(), 7);
  EXPECT_FALSE(degraded.ok());
  EXPECT_TRUE(degraded.has_value());
  EXPECT_EQ(*degraded, 7);

  StatusOr<int> empty(Status::InvalidArgument("bad"));
  EXPECT_FALSE(empty.ok());
  EXPECT_FALSE(empty.has_value());
}

// ---------- env parsing ----------

TEST(RunContextEnv, ParseThreadCount) {
  EXPECT_EQ(ht::parse_thread_count("4", 9), 4u);
  EXPECT_EQ(ht::parse_thread_count("1", 9), 1u);
  EXPECT_EQ(ht::parse_thread_count(nullptr, 9), 9u);
  EXPECT_EQ(ht::parse_thread_count("", 9), 9u);
  EXPECT_EQ(ht::parse_thread_count("0", 9), 9u);
  EXPECT_EQ(ht::parse_thread_count("-3", 9), 9u);
  EXPECT_EQ(ht::parse_thread_count("abc", 9), 9u);
  EXPECT_EQ(ht::parse_thread_count("16x", 9), 9u);
  EXPECT_EQ(ht::parse_thread_count("999999", 9), 1024u);  // capped
}

TEST(RunContextEnv, FromEnvPopulatesThreads) {
  const RunContext ctx = RunContext::FromEnv();
  EXPECT_GE(ctx.threads, 1u);
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_EQ(ctx.piece_budget, 0u);
}

TEST(RunContextEnv, ExplicitThreadsBeatEnvironment) {
  // The documented precedence is flag > HT_THREADS > hardware:
  // FromEnv() seeds `threads` from the environment, and with_threads()
  // (what hypertree_cli --threads applies on top of it) overwrites that
  // value unconditionally. CI drives the CLI end to end with
  // HT_THREADS=2 --threads=1 and asserts the summary reports threads=1.
  RunContext ctx = RunContext::FromEnv();
  const std::size_t env_threads = ctx.threads;
  ctx.with_threads(env_threads + 3);
  EXPECT_EQ(ctx.threads, env_threads + 3);
  ctx.with_threads(1);
  EXPECT_EQ(ctx.threads, 1u);
}

// ---------- run state ----------

TEST(RunState, CancelLatches) {
  CancelSource source;
  RunContext ctx;
  ctx.with_cancel(source.token());
  RunScope scope(ctx);
  EXPECT_TRUE(scope.state().check().ok());
  EXPECT_FALSE(scope.state().stopped());
  source.request_cancel();
  EXPECT_EQ(scope.state().check().code(), StatusCode::kCancelled);
  EXPECT_TRUE(scope.state().stopped());
  EXPECT_EQ(scope.status().code(), StatusCode::kCancelled);
}

TEST(RunState, DeadlineLatchesAndFirstStopWins) {
  CancelSource source;
  RunContext ctx = expired_context();
  ctx.with_cancel(source.token());
  RunScope scope(ctx);
  // Cancel is polled before the deadline, so fire the deadline first.
  EXPECT_EQ(scope.state().check().code(), StatusCode::kDeadlineExceeded);
  // The latch never changes, even if another stop reason fires later.
  source.request_cancel();
  EXPECT_EQ(scope.state().check().code(), StatusCode::kDeadlineExceeded);
}

TEST(RunState, PieceBudgetLatchesDeterministically) {
  RunContext ctx;
  ctx.with_piece_budget(3);
  RunScope scope(ctx);
  EXPECT_EQ(scope.state().note_piece(), 1u);
  EXPECT_FALSE(scope.state().stopped());
  scope.state().note_piece();
  EXPECT_FALSE(scope.state().stopped());
  scope.state().note_piece();
  EXPECT_TRUE(scope.state().stopped());
  EXPECT_EQ(scope.status().code(), StatusCode::kResourceExhausted);
}

TEST(RunState, ScopesNestAndRestore) {
  EXPECT_EQ(ht::current_run_state(), nullptr);
  EXPECT_FALSE(ht::run_stopped());
  {
    RunScope outer{RunContext{}};
    EXPECT_EQ(ht::current_run_state(), &outer.state());
    {
      RunScope inner(expired_context());
      inner.state().check();
      EXPECT_TRUE(ht::run_stopped());
    }
    EXPECT_EQ(ht::current_run_state(), &outer.state());
    EXPECT_FALSE(ht::run_stopped());
  }
  EXPECT_EQ(ht::current_run_state(), nullptr);
}

// ---------- determinism: budget stop at a fixed logical piece ----------

// Acceptance: cancelling at a fixed logical piece yields byte-identical
// partial trees for 1 and 4 threads. The piece budget is that fixed
// logical stop — it is counted at the serial fold boundary.
TEST(AnytimeDeterminism, VertexCutTreePartialTreeAcrossThreadCounts) {
  const auto g = ht::graph::grid(10, 10);
  ht::cuttree::VertexCutTreeOptions options;
  options.threshold_override = 0.45;  // force a deep peeling
  auto build_partial = [&g, &options](std::size_t threads) {
    RunContext ctx;
    ctx.threads = threads;
    ctx.with_piece_budget(4);
    ht::Solver solver(ctx);
    return solver.build_vertex_cut_tree(g, options);
  };
  const auto one = build_partial(1);
  const auto four = build_partial(4);
  ht::ThreadPool::reset_global();
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(four.has_value());
  EXPECT_EQ(one.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(four.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ht::cuttree::tree_signature(one->tree),
            ht::cuttree::tree_signature(four->tree));
  EXPECT_EQ(one->separator_vertices, four->separator_vertices);
  // The partial tree is coarser than the full tree but still complete
  // over the vertex set.
  ht::Solver full_solver;
  const auto full = full_solver.build_vertex_cut_tree(g, options);
  ASSERT_TRUE(full.ok());
  EXPECT_GE(full->separator_vertices.size(),
            one->separator_vertices.size());
}

TEST(AnytimeDeterminism, DecompositionTreePartialTreeAcrossThreadCounts) {
  ht::Rng rng(99);
  const auto g = ht::graph::gnp_connected(80, 5.0 / 80, rng);
  auto build_partial = [&g](std::size_t threads) {
    RunContext ctx;
    ctx.threads = threads;
    ctx.with_piece_budget(3);
    ht::Solver solver(ctx);
    return solver.decomposition_tree(g);
  };
  const auto one = build_partial(1);
  const auto four = build_partial(4);
  ht::ThreadPool::reset_global();
  EXPECT_EQ(one.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(four.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ht::cuttree::tree_signature(one->tree),
            ht::cuttree::tree_signature(four->tree));
}

TEST(AnytimeDeterminism, GomoryHuBudgetStopsAtSameVertex) {
  ht::Rng rng(7);
  const auto g = ht::graph::gnp_connected(40, 6.0 / 40, rng);
  auto build_partial = [&g](std::size_t threads) {
    RunContext ctx;
    ctx.threads = threads;
    ctx.with_piece_budget(5);
    ht::Solver solver(ctx);
    return solver.gomory_hu(g);
  };
  const auto one = build_partial(1);
  const auto four = build_partial(4);
  ht::ThreadPool::reset_global();
  EXPECT_EQ(one.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(one->applied, 5);
  EXPECT_EQ(four->applied, 5);
  EXPECT_EQ(one->tree.parent, four->tree.parent);
  EXPECT_EQ(one->tree.parent_cut, four->tree.parent_cut);

  // Pessimistic lower bound: the partial tree never over-reports a cut.
  ht::Solver full_solver;
  const auto full = full_solver.gomory_hu(g);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->applied, g.num_vertices() - 1);
  for (ht::graph::VertexId s = 0; s < g.num_vertices(); ++s)
    for (ht::graph::VertexId t = s + 1; t < g.num_vertices(); ++t)
      EXPECT_LE(one->tree.min_cut(s, t), full->tree.min_cut(s, t) + 1e-9);
}

// ---------- graceful degradation under a deadline ----------

TEST(AnytimeDegradation, ExpiredDeadlineBisectionStaysFeasible) {
  ht::Rng rng(2024);
  const auto h = ht::hypergraph::random_uniform(200, 400, 3, rng);
  ht::Solver solver(expired_context());
  const auto report = solver.bisect(h);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(report->status.code(), StatusCode::kDeadlineExceeded);
  // Feasible: valid flag set, exactly half the vertices on each side, and
  // the reported cut is the true cost of that partition.
  ASSERT_TRUE(report->solution.valid);
  ASSERT_EQ(report->solution.side.size(),
            static_cast<std::size_t>(h.num_vertices()));
  std::int64_t on_one = 0;
  for (bool b : report->solution.side) on_one += b ? 1 : 0;
  EXPECT_EQ(on_one, h.num_vertices() / 2);
  EXPECT_DOUBLE_EQ(report->solution.cut,
                   h.cut_weight(report->solution.side));
}

TEST(AnytimeDegradation, ExpiredDeadlineCutTreeBisectionStaysFeasible) {
  ht::Rng rng(11);
  const auto h = ht::hypergraph::random_uniform(60, 120, 3, rng);
  ht::Solver solver(expired_context());
  const auto report = solver.bisect_via_cut_tree(h);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(report->solution.valid);
  std::int64_t on_one = 0;
  for (bool b : report->solution.side) on_one += b ? 1 : 0;
  EXPECT_EQ(on_one, h.num_vertices() / 2);
}

TEST(AnytimeDegradation, ShortDeadlineBisectionTerminatesFeasibly) {
  // A live (not pre-expired) 5 ms deadline on an instance that takes much
  // longer: whatever point the stop lands on, the result must be feasible.
  ht::Rng rng(5);
  const auto h = ht::hypergraph::random_uniform(240, 480, 3, rng);
  RunContext ctx;
  ctx.with_deadline_after(std::chrono::milliseconds(5));
  ht::Solver solver(ctx);
  const auto report = solver.bisect(h);
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->solution.valid);
  std::int64_t on_one = 0;
  for (bool b : report->solution.side) on_one += b ? 1 : 0;
  EXPECT_EQ(on_one, h.num_vertices() / 2);
  EXPECT_DOUBLE_EQ(report->solution.cut,
                   h.cut_weight(report->solution.side));
}

TEST(AnytimeDegradation, CancelMidRunStaysFeasible) {
  ht::Rng rng(31);
  const auto h = ht::hypergraph::random_uniform(160, 320, 3, rng);
  CancelSource source;
  RunContext ctx;
  ctx.with_cancel(source.token());
  ht::Solver solver(ctx);
  source.request_cancel();  // cancel before the run even starts
  const auto report = solver.bisect(h);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
  ASSERT_TRUE(report->solution.valid);
}

// Acceptance: after an interrupted run, the same Solver's caches are
// reusable with no leaked state — a subsequent full run is byte-identical
// to one that never saw an interruption.
TEST(AnytimeDegradation, InterruptedRunLeavesArenasReusable) {
  ht::Rng rng(13);
  const auto g = ht::graph::gnp_connected(40, 6.0 / 40, rng);
  ht::Rng hrng(17);
  const auto h = ht::hypergraph::random_uniform(80, 160, 3, hrng);

  // Reference results from a process state with no interruption yet.
  ht::Solver clean;
  const auto reference_tree = clean.gomory_hu(g);
  ASSERT_TRUE(reference_tree.ok());

  // Interrupt a bisection mid-flight (expired deadline).
  ht::Solver degraded(expired_context());
  const auto partial = degraded.bisect(h);
  EXPECT_FALSE(partial.ok());

  // The next full run reuses the same thread-local arenas and caches.
  const auto after = clean.gomory_hu(g);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->tree.parent, reference_tree->tree.parent);
  EXPECT_EQ(after->tree.parent_cut, reference_tree->tree.parent_cut);

  // Arena metrics stay consistent (hit rate is a probability; the reuse
  // counters only ever grow).
  const auto& counters = ht::PerfCounters::global();
  EXPECT_GE(counters.arena_hit_rate(), 0.0);
  EXPECT_LE(counters.arena_hit_rate(), 1.0);
  EXPECT_EQ(counters.arena_hits() + counters.arena_misses() > 0,
            counters.flow_builds() + counters.flow_reuses() > 0);
}

// ---------- flow-engine propagation ----------

TEST(FlowPropagation, LatchedStopInterruptsMaxFlow) {
  ht::Rng rng(3);
  const auto g = ht::graph::gnp_connected(60, 8.0 / 60, rng);
  // Without a run context the solve is complete.
  const auto free_run = ht::flow::min_edge_cut(g, {0}, {g.num_vertices() - 1});
  EXPECT_TRUE(free_run.complete);

  // With a pre-latched stop, the Dinic loop breaks at its first poll and
  // marks the witness incomplete.
  RunScope scope(expired_context());
  scope.state().check();  // latch kDeadlineExceeded
  const auto interrupted =
      ht::flow::min_edge_cut(g, {0}, {g.num_vertices() - 1});
  EXPECT_FALSE(interrupted.complete);
}

TEST(FlowPropagation, LatchedStopInterruptsHyperedgeCut) {
  const auto h = chain_hypergraph(40);
  RunScope scope(expired_context());
  scope.state().check();
  const auto interrupted =
      ht::flow::min_hyperedge_cut(h, {0}, {h.num_vertices() - 1});
  EXPECT_FALSE(interrupted.complete);
}

TEST(FlowPropagation, GomoryHuNeverAppliesIncompleteCuts) {
  ht::Rng rng(23);
  const auto g = ht::graph::gnp_connected(30, 6.0 / 30, rng);
  RunScope scope(expired_context());
  scope.state().check();
  const auto result = ht::flow::gomory_hu_run(g);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.applied, 0);
  // The provisional star is a valid tree with pessimistic zero cuts.
  ASSERT_EQ(result.tree.parent.size(),
            static_cast<std::size_t>(g.num_vertices()));
  for (ht::graph::VertexId v = 1; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.tree.parent[static_cast<std::size_t>(v)], 0);
    EXPECT_EQ(result.tree.parent_cut[static_cast<std::size_t>(v)], 0.0);
  }
}

TEST(FlowPropagation, HypergraphGomoryHuStopsCleanly) {
  const auto h = chain_hypergraph(24);
  RunContext ctx;
  ctx.with_piece_budget(4);
  RunScope scope(ctx);
  const auto result = ht::flow::hypergraph_gomory_hu_run(h);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(result.applied, 4);
}

// ---------- hMetis IO statuses ----------

StatusOr<ht::hypergraph::Hypergraph> parse(const std::string& text) {
  std::istringstream is(text);
  return ht::hypergraph::try_read_hmetis(is);
}

TEST(IoStatus, WellFormedRoundTrip) {
  ht::Rng rng(41);
  const auto h = ht::hypergraph::random_uniform(12, 20, 3, rng);
  std::ostringstream os;
  ht::hypergraph::write_hmetis(h, os);
  const auto parsed = parse(os.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vertices(), h.num_vertices());
  EXPECT_EQ(parsed->num_edges(), h.num_edges());
  std::vector<bool> side(static_cast<std::size_t>(h.num_vertices()), false);
  for (ht::hypergraph::VertexId v = 0; v < h.num_vertices() / 2; ++v)
    side[static_cast<std::size_t>(v)] = true;
  EXPECT_DOUBLE_EQ(parsed->cut_weight(side), h.cut_weight(side));
}

TEST(IoStatus, MalformedInputsYieldInvalidArgument) {
  const char* bad[] = {
      "",                      // empty
      "% only a comment\n",    // no header
      "notanumber\n",          // unparsable header
      "2 4 7\n1 2\n3 4\n",     // bad fmt field
      "-1 4\n",                // negative edge count
      "2 4\n1 2\n",            // truncated: one of two edge lines
      "1 4\n1 9\n",            // pin out of range
      "1 4\n1 x 2\n",          // non-numeric pin
      "1 4 1\nw 1 2\n",        // missing edge weight
      "1 4 10\n1 2\n1.5\n",    // truncated vertex weights
  };
  for (const char* text : bad) {
    const auto parsed = parse(text);
    EXPECT_FALSE(parsed.ok()) << "input: " << text;
    EXPECT_FALSE(parsed.has_value()) << "input: " << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << "input: " << text;
    EXPECT_FALSE(parsed.status().message().empty()) << "input: " << text;
  }
}

TEST(IoStatus, MissingFileYieldsInvalidArgument) {
  const auto parsed =
      ht::Solver::read_hmetis("/nonexistent/definitely_missing.hmetis");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

// ---------- facade ----------

TEST(SolverFacade, SeedOverrideAppliesToOptions) {
  ht::Rng rng(55);
  const auto h = ht::hypergraph::random_uniform(40, 80, 3, rng);
  RunContext a;
  a.with_seed(123);
  ht::Solver sa(a);
  ht::core::Theorem1Options options;
  options.seed = 999;  // overridden by the context seed
  const auto ra = sa.bisect(h, options);

  RunContext b;
  b.with_seed(123);
  ht::Solver sb(b);
  ht::core::Theorem1Options other;
  other.seed = 111;
  const auto rb = sb.bisect(h, other);

  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->solution.side, rb->solution.side);
  EXPECT_DOUBLE_EQ(ra->solution.cut, rb->solution.cut);
}

TEST(SolverFacade, CompleteRunsReportOk) {
  ht::Rng rng(67);
  const auto g = ht::graph::gnp_connected(30, 5.0 / 30, rng);
  const auto h = chain_hypergraph(20);
  ht::Solver solver;
  EXPECT_TRUE(solver.build_vertex_cut_tree(g).ok());
  EXPECT_TRUE(solver.decomposition_tree(g).ok());
  EXPECT_TRUE(solver.bisect(h).ok());
  EXPECT_TRUE(solver.gomory_hu(g).ok());
  EXPECT_TRUE(solver.gomory_hu(h).ok());
}

}  // namespace
