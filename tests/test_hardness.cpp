#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hardness/dense_vs_random.hpp"
#include "hardness/dks.hpp"
#include "hypergraph/generators.hpp"
#include "reduction/dks_mku.hpp"
#include "util/rng.hpp"

namespace {

using ht::graph::Graph;
using ht::graph::VertexId;
using ht::hypergraph::Hypergraph;

TEST(DenseVsRandom, DegreeStatsBasics) {
  Hypergraph h(4);
  h.add_edge({0, 1});
  h.add_edge({0, 2});
  h.add_edge({0, 3});
  h.finalize();
  const auto stats = ht::hardness::degree_stats(h);
  EXPECT_DOUBLE_EQ(stats.max, 3.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean, 1.5);
}

TEST(DenseVsRandom, LogDensityMatchesAlpha) {
  ht::Rng rng(1);
  const int n = 150;
  const double alpha = 0.6;
  const double p = std::pow(static_cast<double>(n), 1.0 + alpha - 3);
  const Hypergraph h = ht::hypergraph::gnpr(n, p, 3, rng);
  const auto stats = ht::hardness::degree_stats(h);
  EXPECT_NEAR(stats.log_density, alpha, 0.25);
}

TEST(DenseVsRandom, PlantedInstanceHasSmallUnion) {
  // The planted dense sub-hypergraph should make the greedy ell-union far
  // smaller than in a pure random instance — the Claim 1 gap. Strong
  // planting (beta = 1.5) keeps the test robust: ~k^{2.5}/r edges live on
  // just k vertices.
  ht::Rng rng(2);
  const int n = 120, r = 3, k = 16;
  const double beta = 1.5;
  const double p = std::pow(static_cast<double>(n), 1.0 + 0.5 - r);
  const auto planted =
      ht::hypergraph::planted_dense(n, p, r, k, beta, rng);
  const auto ell = static_cast<std::int64_t>(
      std::llround(std::pow(static_cast<double>(k), 1.0 + beta) / r));
  ASSERT_GE(planted.hypergraph.num_edges(), ell);
  // The planted instance CONTAINS an ell-union of size <= k: the witness.
  std::vector<ht::hypergraph::EdgeId> witness;
  for (ht::hypergraph::EdgeId e = planted.first_planted_edge;
       e < planted.hypergraph.num_edges() &&
       static_cast<std::int64_t>(witness.size()) < ell;
       ++e)
    witness.push_back(e);
  ASSERT_EQ(static_cast<std::int64_t>(witness.size()), ell);
  const double witness_union =
      ht::reduction::mku_union_weight(planted.hypergraph, witness);
  EXPECT_LE(witness_union, static_cast<double>(k));

  // A pure-random instance with the same edge count has NO small
  // ell-union: both greedy and sampling stay far above k (fact 2/3 of
  // Claim 1). This is the gap Conjecture 1 says is hard to detect.
  ht::Rng rng2(4);
  const Hypergraph random_h = ht::hypergraph::random_uniform(
      n, planted.hypergraph.num_edges(), r, rng2);
  ht::Rng eval_rng2(5);
  const auto random_cov =
      ht::hardness::union_coverage(random_h, ell, eval_rng2, 16);
  EXPECT_GT(random_cov.greedy_union, 3.0 * k);
  EXPECT_GT(random_cov.sampled_min, 3.0 * k);
}

TEST(DenseVsRandom, SampledUnionUpperBoundsGreedy) {
  ht::Rng rng(6);
  const Hypergraph h = ht::hypergraph::random_uniform(60, 80, 3, rng);
  ht::Rng eval(7);
  const auto cov = ht::hardness::union_coverage(h, 10, eval, 32);
  // Greedy is at least as good as random sampling.
  EXPECT_LE(cov.greedy_union, cov.sampled_min + 1e-9);
}

TEST(Dks, GreedyPeelFindsPlantedClique) {
  // Sparse background + planted K6.
  ht::Rng rng(8);
  Graph g = ht::graph::gnp(40, 0.05, rng);
  Graph with_clique(40);
  for (const auto& e : g.edges()) with_clique.add_edge(e.u, e.v, e.weight);
  for (VertexId a = 0; a < 6; ++a)
    for (VertexId b = a + 1; b < 6; ++b) with_clique.add_edge(a, b);
  with_clique.finalize();
  const auto sol = ht::hardness::dks_greedy_peel(with_clique, 6);
  ASSERT_TRUE(sol.valid);
  EXPECT_GE(sol.induced_edges, 15);  // K6 has 15 edges (+ maybe background)
}

TEST(Dks, ExactMatchesOnSmall) {
  ht::Rng rng(9);
  const Graph g = ht::graph::gnp(12, 0.3, rng);
  if (g.num_edges() < 3) GTEST_SKIP();
  const auto exact = ht::hardness::dks_exact(g, 5);
  const auto greedy = ht::hardness::dks_greedy_peel(g, 5);
  ASSERT_TRUE(exact.valid);
  EXPECT_LE(greedy.induced_edges, exact.induced_edges);
  EXPECT_GE(greedy.induced_edges, exact.induced_edges / 3);
}

TEST(Dks, ViaBisectionRoundTripIsFeasible) {
  ht::Rng rng(10);
  Graph g = ht::graph::gnp(16, 0.25, rng);
  // Ensure some edges exist.
  Graph dense(16);
  for (const auto& e : g.edges()) dense.add_edge(e.u, e.v);
  for (VertexId a = 0; a < 5; ++a)
    for (VertexId b = a + 1; b < 5; ++b) dense.add_edge(a, b);
  dense.finalize();
  const auto sol = ht::hardness::dks_via_bisection(dense, 5, 42, 4);
  ASSERT_TRUE(sol.valid);
  EXPECT_EQ(sol.vertices.size(), 5u);
  EXPECT_EQ(sol.induced_edges,
            ht::reduction::induced_edges(dense, sol.vertices));
  EXPECT_GT(sol.induced_edges, 0);
}

TEST(Dks, RoundTripWithinFSquaredOfExact) {
  // Theorem 4 predicts the chain loses at most f^2; with small instances
  // and a decent bisection solver the loss should be mild.
  ht::Rng rng(11);
  Graph g(14);
  for (VertexId a = 0; a < 6; ++a)
    for (VertexId b = a + 1; b < 6; ++b) g.add_edge(a, b);
  for (VertexId v = 6; v < 14; ++v) g.add_edge(v, (v + 1) % 14 == 0 ? 0 : v - 6);
  g.finalize();
  const auto exact = ht::hardness::dks_exact(g, 6);
  const auto chain = ht::hardness::dks_via_bisection(g, 6, 7, 6);
  ASSERT_TRUE(exact.valid && chain.valid);
  EXPECT_GE(chain.induced_edges, exact.induced_edges / 4);
}

}  // namespace
