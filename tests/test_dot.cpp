#include <gtest/gtest.h>

#include <sstream>

#include "cuttree/dot.hpp"
#include "cuttree/vertex_cut_tree.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"

namespace {

TEST(Dot, GraphExportContainsEdgesAndWeights) {
  ht::graph::Graph g(3);
  g.add_edge(0, 1, 2.5);
  g.add_edge(1, 2);
  g.set_vertex_weight(2, 7.0);
  g.finalize();
  std::ostringstream os;
  ht::write_dot(g, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph G {"), std::string::npos);
  EXPECT_NE(out.find("v0 -- v1"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_NE(out.find("w=7"), std::string::npos);
}

TEST(Dot, HypergraphExportIsBipartite) {
  ht::hypergraph::Hypergraph h(3);
  h.add_edge({0, 1, 2}, 4.0);
  h.finalize();
  std::ostringstream os;
  ht::write_dot(h, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("e0 [shape=box"), std::string::npos);
  EXPECT_NE(out.find("e0 -- v0"), std::string::npos);
  EXPECT_NE(out.find("e0 -- v2"), std::string::npos);
  EXPECT_NE(out.find("w=4"), std::string::npos);
}

TEST(Dot, TreeExportShowsStructure) {
  const auto g = ht::graph::grid(3, 3);
  ht::cuttree::VertexCutTreeOptions options;
  options.threshold_override = 0.45;
  const auto built = ht::cuttree::build_vertex_cut_tree(g, options);
  std::ostringstream os;
  ht::write_dot(built.tree, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("digraph T {"), std::string::npos);
  EXPECT_NE(out.find("inf"), std::string::npos);  // anchor nodes
  EXPECT_NE(out.find("v0"), std::string::npos);   // embedded vertices
  EXPECT_NE(out.find("->"), std::string::npos);
}

}  // namespace
