#include <gtest/gtest.h>

#include <cmath>

#include "core/vertex_bisection.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using ht::core::exact_vertex_bisection;
using ht::core::validate_vertex_bisection;
using ht::core::vertex_bisection_spectral;
using ht::core::vertex_bisection_via_cut_tree;
using ht::graph::Graph;
using ht::graph::VertexId;

TEST(ExactVertexBisection, PathNeedsOneVertex) {
  // Path on 7: removing the middle vertex leaves 3 + 3.
  const Graph g = ht::graph::path(7);
  const auto sol = exact_vertex_bisection(g);
  ASSERT_TRUE(sol.valid);
  validate_vertex_bisection(g, sol);
  EXPECT_DOUBLE_EQ(sol.separator_weight, 1.0);
  EXPECT_EQ(sol.separator.size(), 1u);
}

TEST(ExactVertexBisection, EvenPathAlsoOneVertex) {
  // Path on 8: removing one vertex leaves sides of sizes {i, 7-i}; need
  // both <= 4 -> remove vertex 3 or 4.
  const Graph g = ht::graph::path(8);
  const auto sol = exact_vertex_bisection(g);
  ASSERT_TRUE(sol.valid);
  validate_vertex_bisection(g, sol);
  EXPECT_DOUBLE_EQ(sol.separator_weight, 1.0);
}

TEST(ExactVertexBisection, TwoEqualComponentsAreFree) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.finalize();
  const auto sol = exact_vertex_bisection(g);
  ASSERT_TRUE(sol.valid);
  EXPECT_DOUBLE_EQ(sol.separator_weight, 0.0);
  validate_vertex_bisection(g, sol);
}

TEST(ExactVertexBisection, ThreePairsNeedOneRemoval) {
  // Components {2,2,2} with side cap 3 cannot be grouped evenly: no
  // subset sums to 3. One vertex must go — weight 1 is optimal.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  g.finalize();
  const auto sol = exact_vertex_bisection(g);
  ASSERT_TRUE(sol.valid);
  EXPECT_DOUBLE_EQ(sol.separator_weight, 1.0);
  validate_vertex_bisection(g, sol);
}

TEST(ExactVertexBisection, WeightsMatter) {
  // Star: center weight 100, leaves weight 1. Separator must disconnect;
  // cheaper to remove ~half the leaves than the center? Removing center
  // (100) gives 6 singleton leaves, split 3/3. Removing leaves never
  // disconnects the rest (still a star). But removing 3 leaves leaves a
  // 4-vertex star -> one component of size 4 > 3 = ceil(6... n=7 half=4.
  // Star with 6 leaves: n=7, half=4. Component after removing j leaves has
  // size 7-j; need <= 4 -> j >= 3, and the component is ONE side, other
  // side empty (fine, size 0 <= 4). So removing 3 leaves (weight 3) wins.
  Graph g = ht::graph::star(6);
  g.set_vertex_weight(0, 100.0);
  const auto sol = exact_vertex_bisection(g);
  ASSERT_TRUE(sol.valid);
  validate_vertex_bisection(g, sol);
  EXPECT_DOUBLE_EQ(sol.separator_weight, 3.0);
}

TEST(ExactVertexBisection, GridKnownSeparator) {
  // 3x4 grid: a column of 3 separates into 3 + 6... need both <= 6:
  // removing the second column (3 vertices) leaves 3 and 6.
  const Graph g = ht::graph::grid(3, 4);
  const auto sol = exact_vertex_bisection(g);
  ASSERT_TRUE(sol.valid);
  validate_vertex_bisection(g, sol);
  EXPECT_DOUBLE_EQ(sol.separator_weight, 3.0);
}

TEST(CutTreeVertexBisection, ValidAndBoundedByTreeCut) {
  ht::Rng rng(1);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = ht::graph::gnp_connected(16, 0.25, rng);
    ht::core::VertexBisectionOptions options;
    options.seed = static_cast<std::uint64_t>(trial);
    const auto sol = vertex_bisection_via_cut_tree(g, options);
    ASSERT_TRUE(sol.valid);
    validate_vertex_bisection(g, sol);
  }
}

TEST(CutTreeVertexBisection, NearExactOnSmall) {
  ht::Rng rng(2);
  double worst = 1.0;
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = ht::graph::gnp_connected(12, 0.3, rng);
    const auto exact = exact_vertex_bisection(g);
    ht::core::VertexBisectionOptions options;
    options.seed = static_cast<std::uint64_t>(trial) + 5;
    const auto tree_sol = vertex_bisection_via_cut_tree(g, options);
    validate_vertex_bisection(g, tree_sol);
    EXPECT_GE(tree_sol.separator_weight, exact.separator_weight - 1e-9);
    if (exact.separator_weight > 0)
      worst = std::max(worst,
                       tree_sol.separator_weight / exact.separator_weight);
  }
  // sqrt(12)*polylog ~ 10; measured should be far below.
  EXPECT_LE(worst, 4.0);
}

TEST(SpectralVertexBisection, ValidOnGridAndGnp) {
  ht::Rng rng(3);
  {
    const Graph g = ht::graph::grid(4, 4);
    ht::Rng srng(1);
    const auto sol = vertex_bisection_spectral(g, srng);
    validate_vertex_bisection(g, sol);
    // A 4x4 grid has a 4-vertex column separator; spectral should find
    // something no worse than ~4.
    EXPECT_LE(sol.separator_weight, 4.0 + 1e-9);
  }
  {
    const Graph g = ht::graph::gnp_connected(20, 0.2, rng);
    ht::Rng srng(2);
    const auto sol = vertex_bisection_spectral(g, srng);
    validate_vertex_bisection(g, sol);
  }
}

TEST(VertexBisection, ValidatorCatchesCrossEdge) {
  const Graph g = ht::graph::path(4);
  ht::core::VertexBisectionResult bad;
  bad.valid = true;
  bad.side_a = {0, 1};
  bad.side_b = {2, 3};  // edge (1,2) crosses
  EXPECT_THROW(validate_vertex_bisection(g, bad), std::logic_error);
}

TEST(VertexBisection, ValidatorCatchesImbalance) {
  Graph g(6);
  g.finalize();
  ht::core::VertexBisectionResult bad;
  bad.valid = true;
  bad.side_a = {0, 1, 2, 3};  // 4 > ceil(6/2)
  bad.side_b = {4, 5};
  EXPECT_THROW(validate_vertex_bisection(g, bad), std::logic_error);
}

TEST(VertexBisection, Figure3InstanceUpperBound) {
  // On GH the optimum vertex bisection is small (cut the w_i layer or the
  // u_i layer partially); the cut-tree pipeline must stay within the
  // Table 1 bound sqrt(W) * polylog.
  const auto fig = ht::graph::figure3_gh(16);
  ht::core::VertexBisectionOptions options;
  const auto sol = vertex_bisection_via_cut_tree(fig.graph, options);
  validate_vertex_bisection(fig.graph, sol);
  const double W = fig.graph.total_vertex_weight();
  EXPECT_LE(sol.separator_weight,
            std::sqrt(W) * std::pow(std::log2(W), 1.25));
}

}  // namespace
