#!/usr/bin/env python3
"""Gate a fresh BENCH_serve.json against the checked-in baseline.

Usage:
    bench_diff.py CURRENT [BASELINE]

BASELINE defaults to bench/baselines/BENCH_serve_baseline.json relative
to the repository root (this script's parent directory's parent).

Two tiers, because CI runners are noisy but not arbitrarily noisy:

  soft (``::warning``, exit 0)   p99 > 2x baseline, qps < 0.5x baseline,
                                 flight-recorder overhead >= 2%
  hard (``::error``, exit 1)     p99 > 4x baseline, qps < 0.2x baseline,
                                 hot_swap.dropped != 0, or the per-kind
                                 latency_hist quantiles missing/zero

The hard structural checks (dropped queries, quantiles present and
positive) never depend on runner speed, so they gate unconditionally;
the 4x/0.2x timing walls only catch order-of-magnitude regressions that
no runner jitter explains. Baselines are refreshed deliberately,
in-review, by copying a fresh build/BENCH_serve.json over the file in
bench/baselines/.
"""

import json
import pathlib
import sys

# Measured query sections and the latency_hist key each one feeds
# (the kway section runs k=4, the histogram is keyed by query kind).
SECTIONS = {
    "min_cut": "min_cut",
    "set_cut": "set_cut",
    "bisection": "bisection",
    "kway4": "kway",
}

P99_WARN, P99_FAIL = 2.0, 4.0  # x baseline
QPS_WARN, QPS_FAIL = 0.5, 0.2  # x baseline
OVERHEAD_WARN_PCT = 2.0

failures = []


def warn(title: str, line: str) -> None:
    print(f"::warning title={title}::{line}")


def fail(title: str, line: str) -> None:
    failures.append(line)
    print(f"::error title={title}::{line}")


def diff(current: dict, baseline: dict) -> None:
    for section, hist_key in SECTIONS.items():
        now, then = current[section], baseline[section]

        p99_now, p99_then = now["p99_us"], then["p99_us"]
        line = f"{section}: p99 {p99_now:.3f}us vs baseline {p99_then:.3f}us"
        if p99_now > P99_FAIL * p99_then:
            fail("serve p99 regression", f"{line} (> {P99_FAIL:.0f}x, hard)")
        elif p99_now > P99_WARN * p99_then:
            warn("serve p99 regression", f"{line} (> {P99_WARN:.0f}x, soft)")
        else:
            print(line + " (OK)")

        qps_now, qps_then = now["qps"], then["qps"]
        line = f"{section}: qps {qps_now:.0f} vs baseline {qps_then:.0f}"
        if qps_now < QPS_FAIL * qps_then:
            fail("serve qps regression", f"{line} (< {QPS_FAIL}x, hard)")
        elif qps_now < QPS_WARN * qps_then:
            warn("serve qps regression", f"{line} (< {QPS_WARN}x, soft)")
        else:
            print(line + " (OK)")

        # The per-kind SLO quantiles must be present and meaningful: a
        # zero p50/p99 with queries recorded means the histogram wiring
        # broke, which no amount of runner noise explains.
        hist = current.get("latency_hist", {}).get(hist_key)
        if hist is None:
            fail("latency_hist missing",
                 f"latency_hist[{hist_key!r}] absent from BENCH_serve.json")
            continue
        line = (f"{section}: hist count={hist['count']} "
                f"p50={hist['p50_us']:.3f}us p99={hist['p99_us']:.3f}us")
        if hist["count"] <= 0 or hist["p50_us"] <= 0 or hist["p99_us"] <= 0:
            fail("latency_hist empty", f"{line} (quantiles not recorded)")
        else:
            print(line + " (OK)")

    dropped = current["hot_swap"]["dropped"]
    if dropped != 0:
        fail("hot-swap drops",
             f"hot_swap dropped {dropped} queries (must be 0)")
    else:
        print(f"hot_swap: {current['hot_swap']['answered']} answered, "
              "0 dropped (OK)")

    recorder = current.get("flight_recorder")
    if recorder is None:
        fail("flight recorder missing",
             "flight_recorder section absent from BENCH_serve.json")
    else:
        pct = recorder["overhead_pct"]
        line = (f"flight recorder: {recorder['append_ns']:.2f} ns/append, "
                f"{pct:+.2f}% qps overhead")
        if pct >= OVERHEAD_WARN_PCT:
            warn("flight recorder overhead",
                 f"{line} (>= {OVERHEAD_WARN_PCT}% soft gate)")
        else:
            print(line + " (OK)")


def main(argv: list) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    current_path = pathlib.Path(argv[1])
    baseline_path = (
        pathlib.Path(argv[2]) if len(argv) == 3 else
        pathlib.Path(__file__).resolve().parent.parent
        / "bench" / "baselines" / "BENCH_serve_baseline.json")
    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    diff(current, baseline)
    if failures:
        print(f"\n{len(failures)} hard failure(s):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nbench_diff: all hard gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
